// Observability layer: sharded counter/gauge/histogram semantics under
// concurrency (run under TSan in CI), histogram bucket boundaries and
// percentile extraction, the Prometheus/JSON exposition formats (golden),
// the flight-recorder ring, and the per-query trace spans the service
// completion seam fills — including for queries that never ran (queued
// then cancelled, or shed at admission).
#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "live/snapshot_manager.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

using obs::FlightRecorder;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::PublishRecorder;
using obs::PublishTrace;
using obs::QueryTrace;
using obs::Registry;

/// A scratch file path that cleans itself up (for the slow-query sink).
class TempFile {
 public:
  TempFile() {
    char tmpl[] = "/tmp/binchain_obs_XXXXXX";
    int fd = mkstemp(tmpl);
    EXPECT_GE(fd, 0);
    if (fd >= 0) {
      close(fd);
      path_ = tmpl;
    }
  }
  ~TempFile() {
    if (!path_.empty()) unlink(path_.c_str());
  }
  const std::string& path() const { return path_; }
  std::vector<std::string> Lines() const {
    std::vector<std::string> lines;
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

 private:
  std::string path_;
};

TEST(ObsShardTest, ThreadShardIsStableAndBounded) {
  size_t first = obs::ThreadShard();
  EXPECT_LT(first, obs::kShards);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(obs::ThreadShard(), first);
  // Other threads get their own (bounded) shard, stable for their lifetime.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      size_t mine = obs::ThreadShard();
      EXPECT_LT(mine, obs::kShards);
      for (int i = 0; i < 10; ++i) EXPECT_EQ(obs::ThreadShard(), mine);
    });
  }
  for (auto& th : threads) th.join();
}

// The TSan target of the suite: writers on every shard racing a reader
// that aggregates and renders. Any missing atomicity shows up as a data
// race under -fsanitize=thread; the final totals must be exact.
TEST(ObsCounterTest, ConcurrentIncrementsAndSnapshotsAreExactOnceQuiesced) {
  Registry reg;
  obs::Counter* c = reg.GetCounter("binchain_test_hits_total", "test");
  obs::Histogram* h = reg.GetHistogram("binchain_test_lat_ms", "test");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  // Reader: totals must be monotone while writers run, never invented.
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t v = c->Value();
      EXPECT_GE(v, last);
      EXPECT_LE(v, kThreads * kPerThread);
      last = v;
      HistogramSnapshot snap = h->Snapshot();
      EXPECT_LE(snap.count, kThreads * kPerThread);
      std::string out;
      reg.RenderPrometheus(&out);
      EXPECT_FALSE(out.empty());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Observe(0.5);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.counts[Histogram::BucketFor(0.5)], kThreads * kPerThread);
}

TEST(ObsGaugeTest, SetAndAddAreSignedPointInTime) {
  Registry reg;
  obs::Gauge* g = reg.GetGauge("binchain_test_depth", "test");
  EXPECT_EQ(g->Value(), 0);
  g->Set(42);
  EXPECT_EQ(g->Value(), 42);
  g->Add(-50);
  EXPECT_EQ(g->Value(), -8);
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
}

TEST(ObsHistogramTest, BucketBoundariesAreUpperInclusive) {
  // Bounds are 2^i microseconds: an observation exactly on a bound lands
  // *in* that bucket; one ulp above it spills into the next.
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    double bound = Histogram::UpperBound(i);
    EXPECT_EQ(Histogram::BucketFor(bound), i) << "bound " << bound;
    double above = std::nextafter(bound, 1e300);
    EXPECT_EQ(Histogram::BucketFor(above), i + 1) << "just above " << bound;
    if (i > 0) {
      EXPECT_DOUBLE_EQ(bound, 2 * Histogram::UpperBound(i - 1));
    }
  }
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(0), 0.001);  // 1 microsecond
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(-1), 0u);  // clock skew clamps low
  // Past the last finite bound: the +Inf overflow bucket.
  EXPECT_EQ(Histogram::BucketFor(1e12), Histogram::kBuckets);
}

TEST(ObsHistogramTest, ObserveFillsTheBoundaryBucketAndSum) {
  Registry reg;
  obs::Histogram* h = reg.GetHistogram("binchain_test_h_ms", "test");
  h->Observe(Histogram::UpperBound(5));
  h->Observe(std::nextafter(Histogram::UpperBound(5), 1e300));
  h->Observe(1e12);  // overflow
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.counts[5], 1u);
  EXPECT_EQ(snap.counts[6], 1u);
  EXPECT_EQ(snap.counts[Histogram::kBuckets], 1u);
  EXPECT_GT(snap.sum_ms, 0);
}

TEST(ObsHistogramTest, QuantilesInterpolateWithinTheWinningBucket) {
  Registry reg;
  obs::Histogram* h = reg.GetHistogram("binchain_test_q_ms", "test");
  EXPECT_EQ(h->Snapshot().Quantile(0.5), 0);  // empty histogram
  // 100 observations of 1.0 ms all land in the (0.512, 1.024] bucket, so
  // quantile rank r interpolates linearly across that bucket's width.
  for (int i = 0; i < 100; ++i) h->Observe(1.0);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.P50(), 0.512 + 0.50 * (1.024 - 0.512));
  EXPECT_DOUBLE_EQ(snap.P95(), 0.512 + 0.95 * (1.024 - 0.512));
  EXPECT_DOUBLE_EQ(snap.P99(), 0.512 + 0.99 * (1.024 - 0.512));
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1.024);
  // A quantile that lands in the +Inf bucket reports the last finite
  // bound — the only defensible estimate without an upper edge.
  obs::Histogram* inf = reg.GetHistogram("binchain_test_inf_ms", "test");
  inf->Observe(1e12);
  EXPECT_DOUBLE_EQ(inf->Snapshot().P50(),
                   Histogram::UpperBound(Histogram::kBuckets - 1));
}

TEST(ObsRegistryTest, GetIsIdempotentByNameAndKeepsFirstHelp) {
  Registry reg;
  obs::Counter* a = reg.GetCounter("binchain_test_total", "first help");
  obs::Counter* b = reg.GetCounter("binchain_test_total", "second help");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->help(), "first help");
  EXPECT_EQ(reg.GetGauge("binchain_test_g", "h"),
            reg.GetGauge("binchain_test_g", "h2"));
  EXPECT_EQ(reg.GetHistogram("binchain_test_h", "h"),
            reg.GetHistogram("binchain_test_h", "h2"));
}

TEST(ObsRegistryTest, ResetForTestZeroesValuesButKeepsPointersValid) {
  Registry reg;
  obs::Counter* c = reg.GetCounter("binchain_test_total", "t");
  obs::Gauge* g = reg.GetGauge("binchain_test_g", "t");
  obs::Histogram* h = reg.GetHistogram("binchain_test_h_ms", "t");
  c->Inc(5);
  g->Set(9);
  h->Observe(1.0);
  reg.ResetForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Snapshot().count, 0u);
  c->Inc();  // the cached pointer still works after reset
  EXPECT_EQ(c->Value(), 1u);
}

// Golden: the exact exposition bytes for a registry with one of each
// instrument kind. Catches accidental format drift (ordering, HELP/TYPE
// lines, cumulative buckets, +Inf, _sum/_count) that would break scrapers.
TEST(ObsExpositionTest, PrometheusGolden) {
  Registry reg;
  reg.GetGauge("binchain_test_epoch", "Serving epoch")->Set(7);
  reg.GetCounter("binchain_test_queries_total", "Queries completed")->Inc(3);
  obs::Histogram* h =
      reg.GetHistogram("binchain_test_latency_ms", "Query latency");
  h->Observe(0.001);  // exactly on the first bound -> bucket 0
  h->Observe(0.5);    // (0.256, 0.512] -> bucket 9
  h->Observe(1e12);   // +Inf overflow

  // Name-sorted: epoch < latency_ms < queries_total.
  std::string expected;
  expected +=
      "# HELP binchain_test_epoch Serving epoch\n"
      "# TYPE binchain_test_epoch gauge\n"
      "binchain_test_epoch 7\n"
      "# HELP binchain_test_latency_ms Query latency\n"
      "# TYPE binchain_test_latency_ms histogram\n";
  uint64_t cum = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (i == 0) cum += 1;  // the 0.001 observation
    if (i == 9) cum += 1;  // the 0.5 observation
    char line[128];
    std::snprintf(line, sizeof(line),
                  "binchain_test_latency_ms_bucket{le=\"%.10g\"} %llu\n",
                  Histogram::UpperBound(i),
                  static_cast<unsigned long long>(cum));
    expected += line;
  }
  expected +=
      "binchain_test_latency_ms_bucket{le=\"+Inf\"} 3\n";
  {
    // Sum is carried in integer nanoseconds; reconstruct the same rounding.
    char line[128];
    std::snprintf(
        line, sizeof(line), "binchain_test_latency_ms_sum %.10g\n",
        static_cast<double>(static_cast<uint64_t>(0.001 * 1e6) +
                            static_cast<uint64_t>(0.5 * 1e6) +
                            static_cast<uint64_t>(1e12 * 1e6)) /
            1e6);
    expected += line;
  }
  expected +=
      "binchain_test_latency_ms_count 3\n"
      "# HELP binchain_test_queries_total Queries completed\n"
      "# TYPE binchain_test_queries_total counter\n"
      "binchain_test_queries_total 3\n";

  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

TEST(ObsExpositionTest, PrometheusLinesAreScrapeShaped) {
  // Every line of the exposition is either a comment or starts with the
  // metric name — the shape bench/lint_prometheus.py and the CI scrape
  // step assert on.
  Registry reg;
  reg.GetCounter("binchain_test_a_total", "a")->Inc();
  reg.GetGauge("binchain_test_b", "b")->Set(1);
  reg.GetHistogram("binchain_test_c_ms", "c")->Observe(1);
  std::string out = reg.RenderPrometheus();
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // newline-terminated lines only
    std::string line = out.substr(start, end - start);
    EXPECT_TRUE(line.rfind("# ", 0) == 0 ||
                line.rfind("binchain_test_", 0) == 0)
        << "unexpected line: " << line;
    start = end + 1;
  }
}

TEST(ObsExpositionTest, JsonDumpCarriesCountsAndPercentiles) {
  Registry reg;
  reg.GetCounter("binchain_test_queries_total", "q")->Inc(3);
  reg.GetGauge("binchain_test_epoch", "e")->Set(-2);
  obs::Histogram* h = reg.GetHistogram("binchain_test_lat_ms", "l");
  for (int i = 0; i < 4; ++i) h->Observe(1.0);
  std::string out = reg.RenderJson();
  EXPECT_NE(out.find("\"binchain_test_queries_total\": 3"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"binchain_test_epoch\": -2"), std::string::npos) << out;
  EXPECT_NE(out.find("\"binchain_test_lat_ms\": {\"count\": 4"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"p99_ms\": "), std::string::npos) << out;
}

TEST(FlightRecorderTest, RingRetainsTheLastCapacitySpansOldestFirst) {
  FlightRecorder rec(3, 0);
  for (uint64_t id = 1; id <= 7; ++id) {
    QueryTrace t;
    t.query_id = id;
    t.total_ms = static_cast<double>(id);
    rec.Record(t);
  }
  std::vector<QueryTrace> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].query_id, 5u);
  EXPECT_EQ(spans[1].query_id, 6u);
  EXPECT_EQ(spans[2].query_id, 7u);
}

TEST(FlightRecorderTest, ThresholdFiltersFastQueries) {
  FlightRecorder rec(8, 5.0);
  QueryTrace fast;
  fast.query_id = 1;
  fast.total_ms = 1.0;
  rec.Record(fast);
  QueryTrace slow;
  slow.query_id = 2;
  slow.total_ms = 10.0;
  rec.Record(slow);
  std::vector<QueryTrace> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].query_id, 2u);
}

TEST(FlightRecorderTest, JsonIsAnArrayOfSpanObjects) {
  FlightRecorder rec(4, 0);
  EXPECT_EQ(rec.RenderJson(), "[]");
  QueryTrace t;
  t.query_id = 9;
  t.answers = 2;
  rec.Record(t);
  std::string out = rec.RenderJson();
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
  EXPECT_NE(out.find("\"query_id\": 9"), std::string::npos) << out;
  EXPECT_NE(out.find("\"answers\": 2"), std::string::npos) << out;
}

// ---------------------------------------------------------- trace spans

Program SgProgram(Database& db) {
  return ParseProgram(workloads::SgProgramText(), db.symbols()).take();
}

TEST(TraceSpanTest, CompletedQueryCarriesAFullSpan) {
  Database db;
  std::string source = workloads::Fig7b(db, 64);
  Program program = SgProgram(db);
  QueryService service(&db, program, {2, 64});
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  QueryRequest req{"sg", source, "", {}};
  QueryResponse resp = service.Eval(req);
  ASSERT_TRUE(resp.status.ok());
  ASSERT_FALSE(resp.tuples.empty());

  const QueryTrace& t = resp.trace;
  EXPECT_GT(t.query_id, 0u);
  EXPECT_NE(t.pred, 0u);  // "sg" was interned after the EDB constants
  EXPECT_GE(t.queue_wait_ms, 0);
  EXPECT_GE(t.eval_ms, 0);
  EXPECT_GE(t.total_ms, t.queue_wait_ms);
  EXPECT_EQ(t.answers, resp.tuples.size());
  EXPECT_EQ(t.iterations, resp.stats.iterations);
  EXPECT_EQ(t.fetches, resp.stats.fetches);
  EXPECT_EQ(t.epoch, resp.epoch);
  EXPECT_GT(t.iterations, 0u);
  EXPECT_FALSE(t.timed_out);
  EXPECT_FALSE(t.cancelled);
  EXPECT_FALSE(t.shed);

  // The same span reached the flight recorder (default threshold 0).
  bool recorded = false;
  for (const QueryTrace& s : service.flight_recorder().Snapshot()) {
    if (s.query_id == t.query_id) {
      recorded = true;
      EXPECT_EQ(s.answers, t.answers);
      EXPECT_EQ(s.epoch, t.epoch);
    }
  }
  EXPECT_TRUE(recorded);
}

TEST(TraceSpanTest, DistinctQueriesGetDistinctIds) {
  Database db;
  workloads::Fig7a(db, 32);
  Program program = SgProgram(db);
  QueryService service(&db, program, {2, 64});
  ASSERT_TRUE(service.status().ok());
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(QueryRequest{"sg", "", "", {}});
  std::vector<QueryResponse> responses = service.EvalBatch(batch, nullptr);
  std::set<uint64_t> ids;
  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok());
    ids.insert(r.trace.query_id);
  }
  EXPECT_EQ(ids.size(), responses.size());
  EXPECT_EQ(ids.count(0), 0u);
}

// The lifecycle guarantee the ISSUE calls out: queries that never reach a
// worker — cancelled while queued, or shed at admission — still complete
// with a full span (eval_ms == 0, disposition flags set) and still land
// in the flight recorder.
TEST(TraceSpanTest, QueuedCancelledAndShedQueriesProduceCompleteSpans) {
  Database db;
  std::string source = workloads::Fig7b(db, 1024);
  Program program = SgProgram(db);
  QueryService service(&db, program, {1, 1});
  ASSERT_TRUE(service.status().ok());

  QueryRequest req{"sg", source, "", {}};
  // Park the single worker on a ~hundreds-of-ms query, fill the 1-deep
  // queue, then overflow it. Cancel promptly (well inside the running
  // query's lifetime) so both cancellations land before natural
  // completion.
  QueryFuture running = service.Submit(req);
  while (service.pending() != 0) std::this_thread::yield();
  QueryFuture queued = service.Submit(req);
  QueryFuture shed = service.Submit(req);
  queued.Cancel();
  running.Cancel();

  QueryResponse shed_resp = shed.Take();
  EXPECT_EQ(shed_resp.status.code(), StatusCode::kOverloaded);
  EXPECT_GT(shed_resp.trace.query_id, 0u);
  EXPECT_TRUE(shed_resp.trace.shed);
  EXPECT_EQ(shed_resp.trace.eval_ms, 0);  // never accepted, never ran
  EXPECT_EQ(shed_resp.trace.answers, 0u);

  QueryResponse queued_resp = queued.Take();
  EXPECT_EQ(queued_resp.status.code(), StatusCode::kCancelled);
  EXPECT_GT(queued_resp.trace.query_id, 0u);
  EXPECT_TRUE(queued_resp.trace.cancelled);
  // The span is complete even though the query never evaluated: a worker
  // may claim it after the cancel and early-out in microseconds, so the
  // hard guarantees are on the effort counters, not the clock fields.
  EXPECT_EQ(queued_resp.trace.iterations, 0u);
  EXPECT_EQ(queued_resp.trace.answers, 0u);
  EXPECT_GE(queued_resp.trace.total_ms, 0);
  EXPECT_GE(queued_resp.trace.queue_wait_ms, 0);

  QueryResponse running_resp = running.Take();
  EXPECT_EQ(running_resp.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(running_resp.trace.cancelled);

  // All three dispositions are in the recorder.
  std::set<uint64_t> recorded;
  for (const QueryTrace& s : service.flight_recorder().Snapshot()) {
    recorded.insert(s.query_id);
  }
  EXPECT_EQ(recorded.count(shed_resp.trace.query_id), 1u);
  EXPECT_EQ(recorded.count(queued_resp.trace.query_id), 1u);
  EXPECT_EQ(recorded.count(running_resp.trace.query_id), 1u);
}

// ------------------------------------------------ span rings & reset hooks

TEST(SpanRingTest, DefaultCapacityIsTheSharedConstantEverywhere) {
  // Before this PR the recorder default (256) and the service option (64)
  // disagreed; both now cite obs::kSpanRingCapacity.
  FlightRecorder queries;
  PublishRecorder publishes;
  EXPECT_EQ(queries.capacity(), obs::kSpanRingCapacity);
  EXPECT_EQ(publishes.capacity(), obs::kSpanRingCapacity);
  QueryServiceOptions opts;
  EXPECT_EQ(opts.flight_recorder_capacity, obs::kSpanRingCapacity);
}

TEST(SpanRingTest, GlobalResetForTestClearsLiveRings) {
  // Every SpanRing registers a reset hook with the global registry, so the
  // single test hook clears counters AND recorders in one call.
  FlightRecorder queries(4, 0);
  PublishRecorder publishes(4, 0);
  queries.Record(QueryTrace{});
  publishes.Record(PublishTrace{});
  ASSERT_EQ(queries.Snapshot().size(), 1u);
  ASSERT_EQ(publishes.Snapshot().size(), 1u);
  Registry::Global().ResetForTest();
  EXPECT_TRUE(queries.Snapshot().empty());
  EXPECT_TRUE(publishes.Snapshot().empty());
  // Rings keep working after the reset, and destruction unregisters the
  // hook (a second reset after scope exit must not touch freed memory —
  // ASan would catch it via the rings destroyed at the end of this test).
  queries.Record(QueryTrace{});
  EXPECT_EQ(queries.Snapshot().size(), 1u);
}

TEST(ProcessMetricsTest, GlobalRegistryServesTheProcessFamily) {
  std::string out = Registry::Global().RenderPrometheus();
  EXPECT_NE(out.find("binchain_process_start_time_seconds"),
            std::string::npos);
  EXPECT_NE(out.find("binchain_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(out.find("binchain_process_build_info 1"), std::string::npos);
#ifdef __linux__
  // RSS is only readable via /proc; elsewhere the gauge reports -1. The
  // leading newline skips past the # HELP/# TYPE comment lines.
  size_t pos = out.find("\nbinchain_process_resident_memory_bytes ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GT(atoll(out.c_str() + pos +
                  strlen("\nbinchain_process_resident_memory_bytes ")),
            0);
#endif
  // The render hook survives ResetForTest: values are re-stamped on the
  // next render rather than staying zeroed.
  Registry::Global().ResetForTest();
  out = Registry::Global().RenderPrometheus();
  size_t start_pos = out.find("\nbinchain_process_start_time_seconds ");
  ASSERT_NE(start_pos, std::string::npos);
  EXPECT_GT(atoll(out.c_str() + start_pos +
                  strlen("\nbinchain_process_start_time_seconds ")),
            0);
}

// -------------------------------------------------- publish-pipeline spans

TEST(PublishTraceTest, PublishRecordsAPipelineSpanPerBatch) {
  auto genesis = std::make_unique<Database>();
  workloads::Fig7a(*genesis, 8);
  SnapshotManager manager(std::move(genesis));
  manager.Seal();

  const uint64_t before_us = obs::SteadyNowUs();
  manager.AddFact("up", {"p1", "p2"});
  ASSERT_TRUE(manager.Publish().status.ok());
  manager.AddFact("up", {"p2", "p3"});
  ASSERT_TRUE(manager.Publish().status.ok());

  std::vector<PublishTrace> spans = manager.publish_recorder().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].publish_id, 1u);
  EXPECT_EQ(spans[1].publish_id, 2u);
  EXPECT_EQ(spans[0].epoch, 1u);
  EXPECT_EQ(spans[1].epoch, 2u);
  for (const PublishTrace& s : spans) {
    EXPECT_FALSE(s.refused);
    EXPECT_EQ(s.facts_added, 1u);
    EXPECT_EQ(s.relations_touched, 1u);
    EXPECT_GE(s.start_us, before_us);
    EXPECT_GT(s.total_ms, 0);
    // Attributed phases never exceed the wall time they partition.
    EXPECT_LE(s.stage_ms + s.freeze_ms + s.artifact_ms + s.commit_ms +
                  s.swap_ms,
              s.total_ms + 1e-9);
  }
  EXPECT_GT(spans[1].start_us, spans[0].start_us);
}

/// A durability sink that refuses every commit, to drive the refused-span
/// path without fault-injection machinery.
class RefusingSink : public DurabilitySink {
 public:
  Status StageAdd(const std::string&,
                  const std::vector<std::string>&) override {
    return Status::Ok();
  }
  Status StageDelete(const std::string&,
                     const std::vector<std::string>&) override {
    return Status::Ok();
  }
  Status Commit(uint64_t) override {
    return Status::Internal("sink refuses");
  }
  void Published(const Database&) override {}
  void Sealed(const Database&) override {}
};

TEST(PublishTraceTest, RefusedCommitRecordsARefusedSpan) {
  auto genesis = std::make_unique<Database>();
  workloads::Fig7a(*genesis, 8);
  SnapshotManager manager(std::move(genesis));
  RefusingSink sink;
  manager.SetDurabilitySink(&sink);
  manager.Seal();

  manager.AddFact("up", {"p1", "p2"});
  EXPECT_FALSE(manager.Publish().status.ok());

  std::vector<PublishTrace> spans = manager.publish_recorder().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].refused);
  // No tip swap happened, so no time is attributed to one.
  EXPECT_EQ(spans[0].swap_ms, 0);
  EXPECT_GT(spans[0].total_ms, 0);
}

// ------------------------------------------------------- slow-query sink

TEST(SlowLogTest, ThresholdAndSamplingGateWrites) {
  TempFile file;
  obs::SlowQueryLog log;
  ASSERT_TRUE(log.Open(file.path(), /*min_ms=*/5.0, /*sample_every=*/2).ok());
  ASSERT_TRUE(log.enabled());

  QueryTrace fast;
  fast.query_id = 1;
  fast.total_ms = 1.0;
  log.MaybeRecord(fast);  // below threshold: not even counted as seen

  for (uint64_t id = 2; id <= 5; ++id) {
    QueryTrace slow;
    slow.query_id = id;
    slow.total_ms = 50.0;
    log.MaybeRecord(slow);
  }
  EXPECT_EQ(log.seen(), 4u);
  EXPECT_EQ(log.written(), 2u);  // every 2nd qualifying span: ids 2 and 4
  log.Close();
  EXPECT_FALSE(log.enabled());

  std::vector<std::string> lines = file.Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("{\"unix_ms\": ", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("\"query_id\": 2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"query_id\": 4"), std::string::npos);
}

TEST(SlowLogTest, ServiceAppendsQualifyingSpansAsJsonl) {
  TempFile file;
  Database db;
  workloads::Fig7a(db, 32);
  Program program = SgProgram(db);
  QueryServiceOptions opts;
  opts.num_threads = 2;
  opts.slow_query_log_path = file.path();
  opts.slow_query_log_min_ms = 0;  // everything qualifies
  QueryResponse resp;
  {
    QueryService service(&db, program, opts);
    ASSERT_TRUE(service.status().ok()) << service.status().message();
    QueryRequest req{"sg", "", "", {}};
    resp = service.Eval(req);
    ASSERT_TRUE(resp.status.ok());
    // The sink writes after the completion notify, off the batch lock —
    // the destructor joins the workers, so the line is durable past here.
  }

  std::vector<std::string> lines = file.Lines();
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"trace\": {\"query_id\": "), std::string::npos)
      << lines[0];
  EXPECT_NE(
      lines[0].find("\"query_id\": " + std::to_string(resp.trace.query_id)),
      std::string::npos);
}

// ------------------------------------------------------ Chrome trace JSON

TEST(ChromeTraceTest, EmptyRingsStillRenderAValidDocument) {
  std::string out = obs::RenderChromeTrace({}, {});
  EXPECT_NE(out.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(out.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 4), "]\n}\n");
}

TEST(ChromeTraceTest, OverlappingQueriesSpreadAcrossLanes) {
  // q1 [0, 10ms) and q2 [1ms, 11ms) overlap -> distinct lanes; q3 starts
  // at 50ms, after both ended -> reuses the first lane.
  QueryTrace q1, q2, q3;
  q1.query_id = 1;
  q1.start_us = 0;
  q1.total_ms = 10;
  q2.query_id = 2;
  q2.start_us = 1000;
  q2.total_ms = 10;
  q3.query_id = 3;
  q3.start_us = 50000;
  q3.total_ms = 1;
  std::string out = obs::RenderChromeTrace({q1, q2, q3}, {});
  EXPECT_NE(out.find("\"queries-0\""), std::string::npos);
  EXPECT_NE(out.find("\"queries-1\""), std::string::npos);
  EXPECT_EQ(out.find("\"queries-2\""), std::string::npos);  // two lanes only
  // Lane assignment: q1 tid 2, q2 tid 3, q3 back on tid 2.
  EXPECT_NE(out.find("\"tid\": 2, \"cat\": \"query\", \"name\": \"query 1\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"tid\": 3, \"cat\": \"query\", \"name\": \"query 2\""),
            std::string::npos);
  EXPECT_NE(out.find("\"tid\": 2, \"cat\": \"query\", \"name\": \"query 3\""),
            std::string::npos);
}

TEST(ChromeTraceTest, PublishSlicesCarryPipelinePhaseChildren) {
  PublishTrace p;
  p.publish_id = 1;
  p.epoch = 4;
  p.start_us = 2000;
  p.stage_ms = 1;
  p.freeze_ms = 2;
  p.artifact_ms = 0;  // zero phases are elided, not rendered as 0-width
  p.commit_ms = 3;
  p.swap_ms = 0.5;
  p.total_ms = 7;
  p.facts_added = 9;
  std::string out = obs::RenderChromeTrace({}, {p});
  EXPECT_NE(out.find("\"name\": \"publish e4\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"stage\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"freeze\""), std::string::npos);
  EXPECT_EQ(out.find("\"name\": \"artifact_refresh\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"wal_commit\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"tip_swap\""), std::string::npos);
  // Phases lay end-to-end from the parent's start: wal_commit begins after
  // stage (1ms) + freeze (2ms) => ts 2000 + 3000 us.
  EXPECT_NE(out.find("\"name\": \"wal_commit\", \"ts\": 5000.0"),
            std::string::npos)
      << out;
  // All publish slices share the dedicated publish lane (tid 1).
  EXPECT_NE(out.find("\"thread_name\", \"args\": {\"name\": \"publish\"}"),
            std::string::npos);
}

TEST(TraceSpanTest, RecordMetricsOffStillFillsResponseTraces) {
  Database db;
  workloads::Fig7a(db, 32);
  Program program = SgProgram(db);
  QueryServiceOptions opts;
  opts.num_threads = 1;
  opts.record_metrics = false;
  QueryService service(&db, program, opts);
  ASSERT_TRUE(service.status().ok());
  QueryRequest req{"sg", "", "", {}};
  QueryResponse resp = service.Eval(req);
  ASSERT_TRUE(resp.status.ok());
  EXPECT_GT(resp.trace.query_id, 0u);
  EXPECT_EQ(resp.trace.answers, resp.tuples.size());
  // But nothing reaches the flight recorder (the A/B bench switch).
  EXPECT_TRUE(service.flight_recorder().Snapshot().empty());
}

}  // namespace
}  // namespace binchain
