#include <gtest/gtest.h>

#include <set>

#include "baselines/bottom_up.h"
#include "baselines/counting.h"
#include "baselines/magic.h"
#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

Program MustParse(const std::string& text, SymbolTable& symbols) {
  auto r = ParseProgram(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

Literal MustLiteral(const std::string& text, SymbolTable& symbols) {
  auto r = ParseLiteral(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

std::set<std::string> Col(const Database& db, const std::vector<Tuple>& ts,
                          size_t i) {
  std::set<std::string> out;
  for (const Tuple& t : ts) out.insert(db.symbols().Name(t[i]));
  return out;
}

class BaselinesTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(BaselinesTest, NaiveTransitiveClosure) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  Program p = MustParse(workloads::PathProgramText(), db_.symbols());
  BottomUpStats stats;
  auto r = NaiveQuery(p, db_, MustLiteral("path(a, Y)", db_.symbols()),
                      &stats);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(Col(db_, r.value(), 1), (std::set<std::string>{"b", "c"}));
  EXPECT_GT(stats.rounds, 1u);
}

TEST_F(BaselinesTest, SeminaiveMatchesNaive) {
  Rng rng(3);
  workloads::RandomGraph(db_, "e", "v", 25, 50, rng);
  Program p = MustParse(workloads::PathProgramText(), db_.symbols());
  Literal q = MustLiteral("path(v1, Y)", db_.symbols());
  BottomUpStats ns, ss;
  auto naive = NaiveQuery(p, db_, q, &ns);
  auto semi = SeminaiveQuery(p, db_, q, &ss);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(naive.value(), semi.value());
  // Seminaive must not fire more often than naive re-derivation.
  EXPECT_LE(ss.firings, ns.firings);
}

TEST_F(BaselinesTest, SeminaiveHandlesCycles) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "a"});
  Program p = MustParse(workloads::PathProgramText(), db_.symbols());
  auto r = SeminaiveQuery(p, db_, MustLiteral("path(a, Y)", db_.symbols()),
                          nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Col(db_, r.value(), 1), (std::set<std::string>{"a", "b"}));
}

TEST_F(BaselinesTest, BottomUpRejectsUnsafePrograms) {
  SymbolTable& symbols = db_.symbols();
  Program unsafe = MustParse("p(X, Y) :- b(X, X).\n", symbols);
  EXPECT_FALSE(
      NaiveQuery(unsafe, db_, MustLiteral("p(a, Y)", symbols), nullptr).ok());
  Program empty_body = MustParse("p(X, X).\n", symbols);
  EXPECT_FALSE(
      SeminaiveQuery(empty_body, db_, MustLiteral("p(a, Y)", symbols), nullptr)
          .ok());
}

TEST_F(BaselinesTest, MagicMatchesSeminaiveOnSg) {
  std::string a = workloads::Fig7a(db_, 6);
  Program p = MustParse(workloads::SgProgramText(), db_.symbols());
  Literal q = MustLiteral("sg(" + a + ", Y)", db_.symbols());
  BottomUpStats ms, ss;
  auto magic = MagicQuery(p, db_, q, &ms);
  auto semi = SeminaiveQuery(p, db_, q, &ss);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(magic.value(), semi.value());
  EXPECT_EQ(magic.value().size(), 6u);
}

TEST_F(BaselinesTest, MagicRestrictsWorkOnIrrelevantData) {
  // Two disconnected sg instances: magic only touches the queried one.
  std::string a = workloads::Fig7c(db_, 10);
  // Irrelevant second component (fresh names).
  for (int i = 0; i < 50; ++i) {
    db_.AddFact("up", {"z" + std::to_string(i), "z" + std::to_string(i + 1)});
    db_.AddFact("flat", {"z" + std::to_string(i), "w" + std::to_string(i)});
    db_.AddFact("down", {"w" + std::to_string(i + 1), "w" + std::to_string(i)});
  }
  Program p = MustParse(workloads::SgProgramText(), db_.symbols());
  Literal q = MustLiteral("sg(" + a + ", Y)", db_.symbols());
  BottomUpStats ms, ss;
  auto magic = MagicQuery(p, db_, q, &ms);
  auto semi = SeminaiveQuery(p, db_, q, &ss);
  ASSERT_TRUE(magic.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(magic.value(), semi.value());
  EXPECT_LT(ms.tuples, ss.tuples);
}

class LevelTest : public ::testing::Test {
 protected:
  void Prepare() {
    program_ = MustParse(workloads::SgProgramText(), db_.symbols());
    auto eqs = TransformToEquations(program_, db_.symbols());
    ASSERT_TRUE(eqs.ok());
    ASSERT_TRUE(MatchLinearNormalForm(eqs.value().final_system,
                                      *db_.symbols().Find("sg"), &nf_));
    views_ = std::make_unique<ViewRegistry>(&db_.symbols());
    views_->RegisterDatabase(db_);
  }

  std::set<std::string> Run(
      const std::string& source,
      Result<std::vector<TermId>> (*fn)(const ViewRegistry&,
                                        const LinearNormalForm&, TermId,
                                        size_t, LevelStats*),
      LevelStats* stats = nullptr) {
    TermId s = views_->pool().Unary(db_.symbols().Intern(source));
    auto r = fn(*views_, nf_, s, 10000, stats);
    EXPECT_TRUE(r.ok()) << r.status().message();
    std::set<std::string> out;
    for (TermId y : r.value()) {
      out.insert(db_.symbols().Name(views_->pool().AsUnary(y)));
    }
    return out;
  }

  Database db_;
  Program program_;
  LinearNormalForm nf_;
  std::unique_ptr<ViewRegistry> views_;
};

TEST_F(LevelTest, CountingAnswersLadder) {
  std::string a = workloads::Fig7c(db_, 8);
  Prepare();
  EXPECT_EQ(Run(a, &CountingQuery), (std::set<std::string>{"b1"}));
}

TEST_F(LevelTest, HenschenNaqviMatchesCounting) {
  std::string a = workloads::Fig7b(db_, 8);
  Prepare();
  EXPECT_EQ(Run(a, &CountingQuery), Run(a, &HenschenNaqviQuery));
}

TEST_F(LevelTest, ReverseCountingMatchesCounting) {
  std::string a = workloads::Fig7a(db_, 5);
  Prepare();
  EXPECT_EQ(Run(a, &CountingQuery), Run(a, &ReverseCountingQuery));
}

TEST_F(LevelTest, HenschenNaqviRetraversesOnLadder) {
  // On Figure 7(c) HN recomputes the d-fold down walk per level: its down
  // work is quadratic while counting's Horner fold stays linear.
  std::string a = workloads::Fig7c(db_, 60);
  Prepare();
  LevelStats cs, hs;
  Run(a, &CountingQuery, &cs);
  Run(a, &HenschenNaqviQuery, &hs);
  EXPECT_GT(hs.down_work, 3 * cs.down_work);
}

TEST_F(LevelTest, CountingCapsOnCycles) {
  std::string a = workloads::Fig8(db_, 2, 3);
  Prepare();
  TermId s = views_->pool().Unary(db_.symbols().Intern(a));
  LevelStats stats;
  auto r = CountingQuery(*views_, nf_, s, 6, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(stats.hit_cap);
  EXPECT_EQ(r.value().size(), 3u);  // all down-cycle nodes reached within 6
}

}  // namespace
}  // namespace binchain
