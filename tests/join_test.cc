#include <gtest/gtest.h>

#include <set>

#include "datalog/parser.h"
#include "eval/join.h"
#include "storage/database.h"

namespace binchain {
namespace {

class JoinTest : public ::testing::Test {
 protected:
  Database db_;

  RelationResolver Resolver() {
    return [this](SymbolId pred) {
      return db_.Find(db_.symbols().Name(pred));
    };
  }

  std::vector<Literal> Body(const std::string& rule_text) {
    auto p = ParseProgram(rule_text, db_.symbols());
    EXPECT_TRUE(p.ok()) << p.status().message();
    EXPECT_EQ(p.value().rules.size(), 1u);
    return p.value().rules[0].body;
  }

  std::set<std::string> Matches(const std::string& rule_text,
                                const std::string& head_var) {
    std::vector<Literal> body = Body(rule_text);
    SymbolId var = db_.symbols().Intern(head_var);
    Binding binding;
    std::set<std::string> out;
    Status s = EnumerateMatches(Resolver(), db_.symbols(), body, binding,
                                [&](const Binding& b) {
                                  out.insert(db_.symbols().Name(b.at(var)));
                                });
    EXPECT_TRUE(s.ok()) << s.message();
    return out;
  }
};

TEST_F(JoinTest, SimpleJoinAcrossTwoLiterals) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  db_.AddFact("e", {"b", "d"});
  auto got = Matches("h(Z) :- e(a, Y), e(Y, Z).", "Z");
  EXPECT_EQ(got, (std::set<std::string>{"c", "d"}));
}

TEST_F(JoinTest, RepeatedVariableWithinLiteral) {
  db_.AddFact("e", {"a", "a"});
  db_.AddFact("e", {"a", "b"});
  auto got = Matches("h(X) :- e(X, X).", "X");
  EXPECT_EQ(got, (std::set<std::string>{"a"}));
}

TEST_F(JoinTest, ConstantsFilterMatches) {
  db_.AddFact("t", {"a", "1", "x"});
  db_.AddFact("t", {"a", "2", "y"});
  auto got = Matches("h(Z) :- t(a, 2, Z).", "Z");
  EXPECT_EQ(got, (std::set<std::string>{"y"}));
}

TEST_F(JoinTest, BuiltinComparisonNumeric) {
  db_.AddFact("n", {"3"});
  db_.AddFact("n", {"12"});
  db_.AddFact("n", {"7"});
  auto got = Matches("h(X) :- n(X), X < 10.", "X");
  EXPECT_EQ(got, (std::set<std::string>{"3", "7"}));
}

TEST_F(JoinTest, BuiltinComparisonLexicographicFallback) {
  db_.AddFact("w", {"apple"});
  db_.AddFact("w", {"pear"});
  auto got = Matches("h(X) :- w(X), X < banana.", "X");
  EXPECT_EQ(got, (std::set<std::string>{"apple"}));
}

TEST_F(JoinTest, EqualityAndInequality) {
  db_.AddFact("e", {"a", "a"});
  db_.AddFact("e", {"a", "b"});
  EXPECT_EQ(Matches("h(Y) :- e(X, Y), X = Y.", "Y"),
            (std::set<std::string>{"a"}));
  EXPECT_EQ(Matches("h(Y) :- e(X, Y), X != Y.", "Y"),
            (std::set<std::string>{"b"}));
}

TEST_F(JoinTest, UnsafeBuiltinReported) {
  db_.AddFact("e", {"a", "b"});
  std::vector<Literal> body = Body("h(X) :- e(X, Y), Z < Y.");
  Binding binding;
  Status s = EnumerateMatches(Resolver(), db_.symbols(), body, binding,
                              [](const Binding&) {});
  EXPECT_FALSE(s.ok());
}

TEST_F(JoinTest, MissingRelationYieldsNoMatches) {
  std::vector<Literal> body = Body("h(X) :- ghost(X).");
  Binding binding;
  size_t count = 0;
  Status s = EnumerateMatches(Resolver(), db_.symbols(), body, binding,
                              [&](const Binding&) { ++count; });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(JoinTest, CrossProductWhenDisconnected) {
  db_.AddFact("l", {"a"});
  db_.AddFact("l", {"b"});
  db_.AddFact("r", {"x"});
  db_.AddFact("r", {"y"});
  size_t count = 0;
  std::vector<Literal> body = Body("h(X, Y) :- l(X), r(Y).");
  Binding binding;
  Status s = EnumerateMatches(Resolver(), db_.symbols(), body, binding,
                              [&](const Binding&) { ++count; });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(count, 4u);
}

TEST_F(JoinTest, InstantiateHeadUsesBinding) {
  db_.AddFact("e", {"a", "b"});
  std::vector<Literal> body = Body("h(Y, c, X) :- e(X, Y).");
  auto parsed = ParseProgram("h(Y, c, X) :- e(X, Y).", db_.symbols());
  const Literal& head = parsed.value().rules[0].head;
  Binding binding;
  Tuple got;
  Status s = EnumerateMatches(Resolver(), db_.symbols(), body, binding,
                              [&](const Binding& b) {
                                got = InstantiateHead(head, b);
                              });
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(db_.symbols().Name(got[0]), "b");
  EXPECT_EQ(db_.symbols().Name(got[1]), "c");
  EXPECT_EQ(db_.symbols().Name(got[2]), "a");
}

}  // namespace
}  // namespace binchain
