#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/tarjan.h"

namespace binchain {
namespace {

TEST(DigraphTest, ReachabilityFollowsEdges) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  auto r = g.Reachable({0});
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_TRUE(r[2]);
  EXPECT_FALSE(r[3]);
  EXPECT_FALSE(r[4]);
}

TEST(DigraphTest, ReversedSwapsDirections) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Digraph r = g.Reversed();
  auto reach = r.Reachable({2});
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
}

TEST(TarjanTest, SingleCycleIsOneComponent) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_TRUE(scc.on_cycle[0]);
  EXPECT_TRUE(scc.on_cycle[1]);
  EXPECT_TRUE(scc.on_cycle[2]);
}

TEST(TarjanTest, DagHasSingletonComponentsOffCycle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 3u);
  EXPECT_FALSE(scc.on_cycle[0]);
  EXPECT_FALSE(scc.on_cycle[1]);
  EXPECT_FALSE(scc.on_cycle[2]);
}

TEST(TarjanTest, SelfLoopCountsAsCycle) {
  Digraph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  SccResult scc = ComputeScc(g);
  EXPECT_TRUE(scc.on_cycle[0]);
  EXPECT_FALSE(scc.on_cycle[1]);
}

TEST(TarjanTest, TwoCyclesBridged) {
  // 0 <-> 1 -> 2 <-> 3
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
}

TEST(TarjanTest, MembersPartitionAllNodes) {
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 3);
  g.AddEdge(4, 4);
  SccResult scc = ComputeScc(g);
  size_t total = 0;
  for (const auto& m : scc.members) total += m.size();
  EXPECT_EQ(total, 6u);
}

}  // namespace
}  // namespace binchain
