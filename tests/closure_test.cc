#include <gtest/gtest.h>

#include <set>

#include "eval/closure.h"
#include "eval/dot_export.h"
#include "eval/query.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

class ClosureTest : public ::testing::Test {
 protected:
  Database db_;

  std::set<std::pair<std::string, std::string>> AllPairs() {
    ViewRegistry views(&db_.symbols());
    views.RegisterDatabase(db_);
    ClosureStats stats;
    auto r = TransitiveClosureAllPairs(views.Find(*db_.symbols().Find("e")),
                                       &stats);
    EXPECT_TRUE(r.ok()) << r.status().message();
    std::set<std::pair<std::string, std::string>> out;
    for (auto [u, v] : r.value()) {
      out.emplace(db_.symbols().Name(views.pool().AsUnary(u)),
                  db_.symbols().Name(views.pool().AsUnary(v)));
    }
    return out;
  }
};

TEST_F(ClosureTest, ChainClosure) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  auto pairs = AllPairs();
  EXPECT_EQ(pairs, (std::set<std::pair<std::string, std::string>>{
                       {"a", "b"}, {"a", "c"}, {"b", "c"}}));
}

TEST_F(ClosureTest, CycleReachesItself) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "a"});
  auto pairs = AllPairs();
  // Every ordered pair including the diagonal.
  EXPECT_EQ(pairs.size(), 4u);
  EXPECT_TRUE(pairs.count({"a", "a"}));
  EXPECT_TRUE(pairs.count({"b", "b"}));
}

TEST_F(ClosureTest, SelfLoopOnly) {
  db_.AddFact("e", {"a", "a"});
  db_.AddFact("e", {"b", "c"});
  auto pairs = AllPairs();
  EXPECT_TRUE(pairs.count({"a", "a"}));
  EXPECT_FALSE(pairs.count({"b", "b"}));
  EXPECT_TRUE(pairs.count({"b", "c"}));
}

TEST_F(ClosureTest, MatchesPerSourceEngineOnRandomGraphs) {
  Rng rng(77);
  workloads::RandomGraph(db_, "e", "v", 40, 90, rng);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto shared = qe.Query("path(X, Y)");
  ASSERT_TRUE(shared.ok());
  EvalOptions per_source;
  per_source.disable_closure_sharing = true;
  auto slow = qe.Query("path(X, Y)", per_source);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(shared.value().tuples, slow.value().tuples);
}

TEST_F(ClosureTest, DiagonalQueryMatches) {
  Rng rng(78);
  workloads::RandomGraph(db_, "e", "v", 25, 60, rng);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto shared = qe.Query("path(X, X)");
  ASSERT_TRUE(shared.ok());
  EvalOptions per_source;
  per_source.disable_closure_sharing = true;
  auto slow = qe.Query("path(X, X)", per_source);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(shared.value().tuples, slow.value().tuples);
  for (const Tuple& t : shared.value().tuples) EXPECT_EQ(t[0], t[1]);
}

TEST_F(ClosureTest, LeftLinearClosureAlsoShared) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(
                    "path(X, Y) :- e(X, Y).\n"
                    "path(X, Z) :- path(X, Y), e(Y, Z).\n")
                  .ok());
  auto r = qe.Query("path(X, Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tuples.size(), 3u);
}

TEST(DotExportTest, NfaDotContainsStatesAndLabels) {
  SymbolTable symbols;
  SymbolId p = symbols.Intern("p");
  RexPtr e = Rex::Concat2(Rex::Pred(symbols.Intern("b")), Rex::Pred(p));
  Nfa nfa = BuildNfa(e, [&](SymbolId s) { return s == p; });
  std::string dot = NfaToDot(nfa, symbols);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
  EXPECT_NE(dot.find("[p]"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST(DotExportTest, DependencyDotMarksRecursion) {
  SymbolTable symbols;
  EquationSystem eqs;
  SymbolId p = symbols.Intern("p");
  SymbolId q = symbols.Intern("q");
  eqs.Set(p, Rex::Concat2(Rex::Pred(symbols.Intern("b")), Rex::Pred(p)));
  eqs.Set(q, Rex::Pred(p));
  std::string dot = EquationDependenciesToDot(eqs, symbols);
  EXPECT_NE(dot.find("\"p\" [peripheries=2]"), std::string::npos);
  EXPECT_NE(dot.find("\"q\" -> \"p\""), std::string::npos);
}

}  // namespace
}  // namespace binchain
