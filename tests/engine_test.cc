#include <gtest/gtest.h>

#include <set>

#include "eval/hsu.h"
#include "eval/query.h"
#include "eval/rex_image.h"
#include "storage/database.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

std::set<std::string> Names(const Database& db,
                            const std::vector<Tuple>& tuples, size_t col) {
  std::set<std::string> out;
  for (const Tuple& t : tuples) out.insert(db.symbols().Name(t[col]));
  return out;
}

class EngineTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(EngineTest, TransitiveClosureBoundFirst) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  db_.AddFact("e", {"c", "d"});
  db_.AddFact("e", {"x", "y"});
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("path(a, Y)");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(Names(db_, r.value().tuples, 1),
            (std::set<std::string>{"b", "c", "d"}));
  // Regular case: a single iteration of the main loop (Theorem 3).
  EXPECT_EQ(r.value().stats.iterations, 1u);
}

TEST_F(EngineTest, TransitiveClosureBoundSecond) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  db_.AddFact("e", {"x", "c"});
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("path(X, c)");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(Names(db_, r.value().tuples, 0),
            (std::set<std::string>{"a", "b", "x"}));
}

TEST_F(EngineTest, BothBoundMembership) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto yes = qe.Query("path(a, c)");
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes.value().tuples.size(), 1u);
  auto no = qe.Query("path(c, a)");
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no.value().tuples.empty());
}

TEST_F(EngineTest, AllFreeEnumeratesAllPairs) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "a"});
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("path(X, Y)");
  ASSERT_TRUE(r.ok());
  // Cycle: every ordered pair over {a, b} is in the closure.
  EXPECT_EQ(r.value().tuples.size(), 4u);
  auto diag = qe.Query("path(X, X)");
  ASSERT_TRUE(diag.ok());
  EXPECT_EQ(diag.value().tuples.size(), 2u);
}

TEST_F(EngineTest, SameGenerationBasic) {
  // Two siblings under one parent.
  db_.AddFact("up", {"x", "p"});
  db_.AddFact("up", {"y", "p"});
  db_.AddFact("down", {"p", "x"});
  db_.AddFact("down", {"p", "y"});
  db_.AddFact("flat", {"p", "p"});
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  auto r = qe.Query("sg(x, Y)");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(Names(db_, r.value().tuples, 1), (std::set<std::string>{"x", "y"}));
}

TEST_F(EngineTest, SgQueryOnDerivedPredicateWithConstantAnswer) {
  std::string a = workloads::Fig7c(db_, 5);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  auto r = qe.Query("sg(" + a + ", Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Names(db_, r.value().tuples, 1), (std::set<std::string>{"b1"}));
}

TEST_F(EngineTest, CyclicDataTerminatesWithBound) {
  std::string a = workloads::Fig8(db_, 3, 4);  // gcd(3,4) = 1
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  EvalOptions opt;
  opt.use_cyclic_bound = true;
  auto r = qe.Query("sg(" + a + ", Y)", opt);
  ASSERT_TRUE(r.ok()) << r.status().message();
  // All n nodes of the down cycle are same-generation answers eventually.
  EXPECT_EQ(r.value().tuples.size(), 4u);
  // The bound is |D1| * |D2| = 3 * 4 = 12.
  EXPECT_LE(r.value().stats.iterations, 12u);
}

TEST_F(EngineTest, CyclicDataNeedsMNIterationsForFullAnswer) {
  std::string a = workloads::Fig8(db_, 3, 5);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  // With a cap below m*n the answer is incomplete.
  EvalOptions capped;
  capped.max_iterations = 10;  // < 15
  auto partial = qe.Query("sg(" + a + ", Y)", capped);
  ASSERT_TRUE(partial.ok());
  EvalOptions full;
  full.use_cyclic_bound = true;
  auto complete = qe.Query("sg(" + a + ", Y)", full);
  ASSERT_TRUE(complete.ok());
  EXPECT_LT(partial.value().tuples.size(), complete.value().tuples.size());
  EXPECT_EQ(complete.value().tuples.size(), 5u);
}

TEST_F(EngineTest, UncappedCyclicRunHitsNoTermination) {
  // Guard: without the cyclic bound the engine would loop; we set a small
  // explicit cap and check it reports hitting it.
  std::string a = workloads::Fig8(db_, 2, 3);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  EvalOptions opt;
  opt.max_iterations = 4;
  auto r = qe.Query("sg(" + a + ", Y)", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().stats.hit_iteration_cap);
}

TEST_F(EngineTest, NodesNotArcsOnLadder) {
  // Figure 7(c): Theta(n) nodes over n iterations; each b_i one node.
  std::string a = workloads::Fig7c(db_, 50);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  auto r = qe.Query("sg(" + a + ", Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().stats.iterations, 49u);
  // Linear, not quadratic: generous constant factor but << n^2 = 2500.
  EXPECT_LT(r.value().stats.nodes, 50u * 12u);
}

TEST_F(EngineTest, QuadraticNodesOnFig7b) {
  std::string a = workloads::Fig7b(db_, 40);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  auto r = qe.Query("sg(" + a + ", Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tuples.size(), 40u);
  // Theta(n^2) nodes: must exceed any linear bound.
  EXPECT_GT(r.value().stats.nodes, 40u * 15u);
}

TEST_F(EngineTest, EngineReuseAcrossRepeatedAndDistinctQueries) {
  // One engine, many queries: EvalFrom resets stats and scratch per call,
  // so a repeated query reproduces answers, stats, and fetch counts
  // exactly, and interleaved different queries don't leak state into it.
  std::string a = workloads::Fig7b(db_, 12);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  auto first = qe.Query("sg(" + a + ", Y)");
  ASSERT_TRUE(first.ok()) << first.status().message();
  ASSERT_FALSE(first.value().tuples.empty());
  for (int i = 0; i < 3; ++i) {
    auto other = qe.Query("sg(a3, Y)");  // different source in between
    ASSERT_TRUE(other.ok());
    auto again = qe.Query("sg(" + a + ", Y)");
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().tuples, first.value().tuples);
    EXPECT_EQ(again.value().stats.nodes, first.value().stats.nodes);
    EXPECT_EQ(again.value().stats.arcs, first.value().stats.arcs);
    EXPECT_EQ(again.value().stats.iterations, first.value().stats.iterations);
    EXPECT_EQ(again.value().stats.expansions, first.value().stats.expansions);
    EXPECT_EQ(again.value().stats.answers_per_iteration,
              first.value().stats.answers_per_iteration);
    EXPECT_EQ(again.value().fetches, first.value().fetches);
    EXPECT_EQ(again.value().stats.fetches, first.value().fetches);
  }
}

TEST_F(EngineTest, BaseRelationQueriesAnswerDirectly) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"a", "a"});
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("e(a, Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tuples.size(), 2u);
  auto diag = qe.Query("e(X, X)");
  ASSERT_TRUE(diag.ok());
  EXPECT_EQ(diag.value().tuples.size(), 1u);
}

TEST_F(EngineTest, UnknownPredicateIsAnError) {
  db_.AddFact("e", {"a", "b"});
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("ghost(a, Y)");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineTest, HsuMatchesEngineOnRegularQueries) {
  Rng rng(7);
  workloads::RandomGraph(db_, "e", "v", 30, 60, rng);
  QueryEngine qe(&db_);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  SymbolId path = *db_.symbols().Find("path");

  auto r = qe.Query("path(v0, Y)");
  ASSERT_TRUE(r.ok());

  HsuStats hstats;
  TermId source = qe.views().pool().Unary(db_.symbols().Intern("v0"));
  auto h = HsuEvaluate(qe.equations(), qe.views(), path, source, &hstats);
  ASSERT_TRUE(h.ok()) << h.status().message();
  std::set<std::string> hnames;
  for (TermId y : h.value()) {
    hnames.insert(db_.symbols().Name(qe.views().pool().AsUnary(y)));
  }
  EXPECT_EQ(Names(db_, r.value().tuples, 1), hnames);
  // HSU preconstructs every tuple occurrence; the demand-driven engine
  // touches at most the reachable part.
  EXPECT_GE(hstats.preconstructed_arcs, 60u);
}

TEST_F(EngineTest, RexImageAndClosure) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  ViewRegistry views(&db_.symbols());
  views.RegisterDatabase(db_);
  SymbolId e = *db_.symbols().Find("e");
  TermId a = views.pool().Unary(db_.symbols().Intern("a"));

  auto img = ImageUnderRex(views, Rex::Pred(e), {a});
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img.value().size(), 1u);

  auto closure = ClosureUnderRex(views, Rex::Pred(e), {a});
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure.value().size(), 3u);  // a, b, c

  auto star = ImageUnderRex(views, Rex::Star(Rex::Pred(e)), {a});
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star.value().size(), 3u);
}

}  // namespace
}  // namespace binchain
