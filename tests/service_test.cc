// Concurrency semantics of the query service: identical result sets and
// deterministic aggregate stats across thread counts, engine reuse across
// repeated queries, freeze behavior of the storage snapshot, a stress run
// with overlapping sources on the Figure-8 cyclic workload, and the async
// submission surface — futures, mid-flight deadline/cancellation unwinds,
// queue-depth admission, and batch completion callbacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

Program SgProgram(Database& db) {
  return ParseProgram(workloads::SgProgramText(), db.symbols()).take();
}

/// All-sources batch over every constant of the database.
std::vector<QueryRequest> AllSourcesBatch(const Database& db,
                                          const QueryOptions& options = {}) {
  std::set<std::string> constants;
  for (const std::string& name : db.relation_names()) {
    for (TupleRef t : db.Find(name)->tuples()) {
      for (SymbolId c : t) constants.insert(db.symbols().Name(c));
    }
  }
  std::vector<QueryRequest> batch;
  for (const std::string& c : constants) {
    QueryRequest req;
    req.pred = "sg";
    req.source = c;
    req.options = options;
    batch.push_back(std::move(req));
  }
  return batch;
}

void ExpectSameResponses(const std::vector<QueryResponse>& a,
                         const std::vector<QueryResponse>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.ok(), b[i].status.ok()) << i;
    EXPECT_EQ(a[i].tuples, b[i].tuples) << i;
    EXPECT_EQ(a[i].stats.nodes, b[i].stats.nodes) << i;
    EXPECT_EQ(a[i].stats.iterations, b[i].stats.iterations) << i;
    EXPECT_EQ(a[i].fetches, b[i].fetches) << i;
  }
}

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnceAndDrainsOnExit) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  {
    ThreadPool pool(4, 64);
    EXPECT_EQ(pool.size(), 4u);
    EXPECT_EQ(pool.queue_capacity(), 64u);
    for (size_t i = 0; i < hits.size(); ++i) {
      pool.SubmitBlocking([&hits, i](size_t worker) {
        EXPECT_LT(worker, 4u);
        ++hits[i];
      });
    }
    // Destruction drains: every accepted task runs before join.
  }
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, TrySubmitShedsAtCapacityAndBlockedSubmitWaits) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1, 2);
    // Park the single worker so the queue state is deterministic.
    pool.SubmitBlocking([&](size_t) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
      ++ran;
    });
    while (pool.pending() != 0) std::this_thread::yield();
    // Two slots fill the queue; the third submission is shed.
    EXPECT_TRUE(pool.TrySubmit([&](size_t) { ++ran; }));
    EXPECT_TRUE(pool.TrySubmit([&](size_t) { ++ran; }));
    EXPECT_EQ(pool.pending(), 2u);
    EXPECT_FALSE(pool.TrySubmit([&](size_t) { ++ran; }));
    // A blocking submitter waits for room instead of shedding.
    std::thread blocked([&] { pool.SubmitBlocking([&](size_t) { ++ran; }); });
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    blocked.join();
    // Destruction drains the remaining queue.
  }
  EXPECT_EQ(ran.load(), 4);
}

TEST(ServiceTest, BatchMatchesSingleThreadedOnFig7Samples) {
  for (auto build : {&workloads::Fig7a, &workloads::Fig7b, &workloads::Fig7c}) {
    Database db;
    build(db, 24);
    Program program = SgProgram(db);
    std::vector<QueryRequest> batch = AllSourcesBatch(db);
    ASSERT_FALSE(batch.empty());

    QueryService seq(&db, program, {1});
    ASSERT_TRUE(seq.status().ok()) << seq.status().message();
    BatchStats seq_stats;
    auto seq_responses = seq.EvalBatch(batch, &seq_stats);

    QueryService par(&db, program, {4});
    ASSERT_TRUE(par.status().ok()) << par.status().message();
    BatchStats par_stats;
    auto par_responses = par.EvalBatch(batch, &par_stats);

    ExpectSameResponses(seq_responses, par_responses);
    // Aggregates are sums of per-query values: identical for any schedule.
    EXPECT_EQ(seq_stats.queries, par_stats.queries);
    EXPECT_EQ(seq_stats.failed, par_stats.failed);
    EXPECT_EQ(seq_stats.tuples, par_stats.tuples);
    EXPECT_EQ(seq_stats.fetches, par_stats.fetches);
    EXPECT_EQ(seq_stats.total.nodes, par_stats.total.nodes);
    EXPECT_EQ(seq_stats.total.arcs, par_stats.total.arcs);
    EXPECT_EQ(seq_stats.total.iterations, par_stats.total.iterations);
    EXPECT_EQ(seq_stats.total.expansions, par_stats.total.expansions);
  }
}

TEST(ServiceTest, RepeatedQueryOnOneServiceIsDeterministic) {
  // Engine reuse: the same request through the same (warm) worker contexts
  // must reproduce answers and stats exactly.
  Database db;
  std::string a = workloads::Fig7b(db, 16);
  QueryService service(&db, SgProgram(db), {2});
  ASSERT_TRUE(service.status().ok());
  QueryRequest req;
  req.pred = "sg";
  req.source = a;
  QueryResponse first = service.Eval(req);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.tuples.empty());
  for (int i = 0; i < 5; ++i) {
    QueryResponse again = service.Eval(req);
    ASSERT_TRUE(again.status.ok());
    EXPECT_EQ(again.tuples, first.tuples);
    EXPECT_EQ(again.stats.nodes, first.stats.nodes);
    EXPECT_EQ(again.stats.arcs, first.stats.arcs);
    EXPECT_EQ(again.stats.iterations, first.stats.iterations);
    EXPECT_EQ(again.fetches, first.fetches);
  }
}

TEST(ServiceTest, AllBindingPatternsThroughTheService) {
  Database db;
  std::string a = workloads::Fig7c(db, 8);
  QueryService service(&db, SgProgram(db), {2});
  ASSERT_TRUE(service.status().ok());

  QueryResponse bound_free = service.Eval({"sg", a, "", {}});
  ASSERT_TRUE(bound_free.status.ok());
  ASSERT_FALSE(bound_free.tuples.empty());

  // p(a, b): membership of a known answer.
  const Tuple& first = bound_free.tuples.front();
  QueryResponse bound_bound = service.Eval(
      {"sg", db.symbols().Name(first[0]), db.symbols().Name(first[1]), {}});
  ASSERT_TRUE(bound_bound.status.ok());
  EXPECT_EQ(bound_bound.tuples.size(), 1u);

  // p(X, b): the inverted system; must include (a, b).
  QueryResponse free_bound =
      service.Eval({"sg", "", db.symbols().Name(first[1]), {}});
  ASSERT_TRUE(free_bound.status.ok());
  EXPECT_NE(std::find(free_bound.tuples.begin(), free_bound.tuples.end(),
                      first),
            free_bound.tuples.end());

  // p(X, Y): all pairs; every bound-free answer appears.
  QueryResponse free_free = service.Eval({"sg", "", ""});
  ASSERT_TRUE(free_free.status.ok());
  for (const Tuple& t : bound_free.tuples) {
    EXPECT_NE(std::find(free_free.tuples.begin(), free_free.tuples.end(), t),
              free_free.tuples.end());
  }
}

TEST(ServiceTest, DiagonalQueryFiltersToEqualPairs) {
  Database db;
  db.AddFact("flat", {"a", "a"});
  db.AddFact("flat", {"b", "c"});
  db.AddFact("up", {"d", "b"});
  db.AddFact("down", {"c", "d"});  // sg(d, d) via up.flat.down
  QueryService service(&db, SgProgram(db), {2});
  ASSERT_TRUE(service.status().ok());
  QueryRequest req;
  req.pred = "sg";
  req.diagonal = true;
  QueryResponse diag = service.Eval(req);
  ASSERT_TRUE(diag.status.ok()) << diag.status.message();
  SymbolId a = *db.symbols().Find("a");
  SymbolId d = *db.symbols().Find("d");
  EXPECT_EQ(diag.tuples, (std::vector<Tuple>{Tuple{a, a}, Tuple{d, d}}));
  // Malformed: diagonal with a bound argument.
  req.source = "a";
  EXPECT_FALSE(service.Eval(req).status.ok());
}

TEST(ServiceTest, ErrorAndEmptyRequestsDoNotPoisonTheBatch) {
  Database db;
  std::string a = workloads::Fig7a(db, 8);
  QueryService service(&db, SgProgram(db), {2});
  ASSERT_TRUE(service.status().ok());
  std::vector<QueryRequest> batch = {
      {"sg", a, "", {}},
      {"nonexistent_predicate", a, "", {}},
      {"sg", "never_interned_constant", "", {}},
  };
  BatchStats stats;
  auto responses = service.EvalBatch(batch, &stats);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_FALSE(responses[0].tuples.empty());
  EXPECT_FALSE(responses[1].status.ok());
  EXPECT_TRUE(responses[2].status.ok());  // unknown constant: empty answer
  EXPECT_TRUE(responses[2].tuples.empty());
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(ServiceTest, ConstructionFreezesTheDatabase) {
  Database db;
  workloads::Fig7a(db, 8);
  EXPECT_FALSE(db.frozen());
  QueryService service(&db, SgProgram(db), {2});
  ASSERT_TRUE(service.status().ok());
  EXPECT_TRUE(db.frozen());
  EXPECT_TRUE(db.symbols().frozen());
  // Facts cannot be loaded against a frozen snapshot.
  Database frozen_db;
  workloads::Fig7a(frozen_db, 4);
  Program with_facts =
      ParseProgram("p(X, Y) :- e(X, Y). e(a, b).", frozen_db.symbols()).take();
  frozen_db.Freeze();
  QueryService bad(&frozen_db, with_facts, {1});
  EXPECT_FALSE(bad.status().ok());
  // A failed service reports the failure through responses AND BatchStats.
  BatchStats bad_stats;
  auto bad_responses = bad.EvalBatch({{"p", "a", ""}}, &bad_stats);
  ASSERT_EQ(bad_responses.size(), 1u);
  EXPECT_FALSE(bad_responses[0].status.ok());
  EXPECT_EQ(bad_stats.queries, 1u);
  EXPECT_EQ(bad_stats.failed, 1u);
}

TEST(ServiceTest, Fig8CyclicStressWithOverlappingSources) {
  // Overlapping sources over cyclic data: every worker traverses the same
  // two cycles under the |D1|*|D2| bound, repeatedly, on shared frozen
  // storage. Compare 1-thread and 4-thread runs response-for-response.
  Database db;
  workloads::Fig8(db, 7, 9);
  Program program = SgProgram(db);
  QueryOptions options;
  options.use_cyclic_bound = true;
  std::vector<QueryRequest> batch;
  for (int rep = 0; rep < 6; ++rep) {
    for (size_t i = 1; i <= 7; ++i) {
      QueryRequest req;
      req.pred = "sg";
      req.source = "a" + std::to_string(i);
      req.options = options;
      batch.push_back(std::move(req));
    }
  }

  QueryService seq(&db, program, {1});
  ASSERT_TRUE(seq.status().ok());
  BatchStats seq_stats;
  auto expected = seq.EvalBatch(batch, &seq_stats);
  EXPECT_EQ(seq_stats.failed, 0u);

  QueryService par(&db, program, {4});
  ASSERT_TRUE(par.status().ok());
  for (int round = 0; round < 3; ++round) {
    BatchStats par_stats;
    auto got = par.EvalBatch(batch, &par_stats);
    ExpectSameResponses(expected, got);
    EXPECT_EQ(par_stats.fetches, seq_stats.fetches);
    EXPECT_EQ(par_stats.total.nodes, seq_stats.total.nodes);
  }
}

TEST(ServiceTest, ExpiredDeadlineReturnsTimedOutWithoutEvaluating) {
  Database db;
  std::string a = workloads::Fig7b(db, 12);
  QueryService service(&db, SgProgram(db), {2});
  ASSERT_TRUE(service.status().ok());

  // A vanishingly small positive budget is already expired by the time any
  // worker picks the request up (the clock has nanosecond resolution), so
  // the outcome is deterministic; zero disables the deadline entirely.
  QueryRequest expired{"sg", a, "", {}};
  expired.options.deadline_ms = 1e-9;
  QueryRequest unlimited{"sg", a, "", {}};
  QueryRequest generous{"sg", a, "", {}};
  generous.options.deadline_ms = 1e9;

  BatchStats stats;
  auto responses = service.EvalBatch({expired, unlimited, generous}, &stats);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].timed_out);
  EXPECT_FALSE(responses[0].status.ok());
  EXPECT_EQ(responses[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(responses[0].tuples.empty());
  EXPECT_EQ(responses[0].stats.nodes, 0u);  // never evaluated

  EXPECT_FALSE(responses[1].timed_out);
  ASSERT_TRUE(responses[1].status.ok());
  EXPECT_FALSE(responses[1].tuples.empty());
  EXPECT_FALSE(responses[2].timed_out);
  ASSERT_TRUE(responses[2].status.ok());
  EXPECT_EQ(responses[2].tuples, responses[1].tuples);

  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.timed_out, 1u);
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// A workload whose single bound-source query runs for hundreds of
/// milliseconds uncancelled (Figure 7 (b) at n = 1024: Theta(n^2) nodes),
/// so deadlines and cancellations land provably mid-flight.
struct LongQueryRig {
  Database db;
  std::string source;
  Program program;
  LongQueryRig() : source(workloads::Fig7b(db, 1024)), program(SgProgram(db)) {}
  QueryRequest Request(double deadline_ms = 0) const {
    QueryRequest req{"sg", source, "", {}};
    req.options.deadline_ms = deadline_ms;
    return req;
  }
};

TEST(AsyncServiceTest, MidFlightDeadlineInterruptsLongQuery) {
  LongQueryRig rig;
  QueryService service(&rig.db, rig.program, {1, 64});
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  // Reference: the same query without a deadline, to completion.
  auto t0 = std::chrono::steady_clock::now();
  QueryResponse full = service.Eval(rig.Request());
  double uncancelled_ms = MsSince(t0);
  ASSERT_TRUE(full.status.ok());
  ASSERT_FALSE(full.tuples.empty());

  // A budget an order of magnitude below the uncancelled runtime: the
  // deadline provably passes mid-traversal, not in the queue.
  double deadline_ms = std::max(5.0, std::min(50.0, uncancelled_ms / 8));
  t0 = std::chrono::steady_clock::now();
  QueryResponse cut = service.Eval(rig.Request(deadline_ms));
  double cancelled_ms = MsSince(t0);

  EXPECT_EQ(cut.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(cut.timed_out);
  EXPECT_FALSE(cut.cancelled);
  EXPECT_TRUE(cut.partial);  // interrupted mid-flight, not at admission
  EXPECT_TRUE(cut.stats.cancelled);
  EXPECT_GT(cut.stats.cancel_checks, 0u);
  EXPECT_GT(cut.stats.nodes, 0u);  // it really was evaluating
  // The unwind happened well before uncancelled completion time.
  EXPECT_LT(cancelled_ms, uncancelled_ms / 2)
      << "uncancelled=" << uncancelled_ms << "ms cancelled=" << cancelled_ms;
  // Partial answers are a true subset of the full answer set.
  EXPECT_LT(cut.tuples.size(), full.tuples.size());
  for (const Tuple& t : cut.tuples) {
    EXPECT_TRUE(std::binary_search(full.tuples.begin(), full.tuples.end(), t));
  }
}

TEST(AsyncServiceTest, FutureCancelUnwindsInFlightQuery) {
  LongQueryRig rig;
  QueryService service(&rig.db, rig.program, {1, 64});
  ASSERT_TRUE(service.status().ok());

  auto t0 = std::chrono::steady_clock::now();
  QueryResponse full = service.Eval(rig.Request());
  double uncancelled_ms = MsSince(t0);
  ASSERT_TRUE(full.status.ok());

  t0 = std::chrono::steady_clock::now();
  QueryFuture future = service.Submit(rig.Request());
  ASSERT_TRUE(future.valid());
  // Wait until the worker claimed it, then give the traversal a head
  // start so the cancel provably lands mid-flight.
  while (service.pending() != 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  future.Cancel();
  QueryResponse resp = future.Take();
  double cancelled_ms = MsSince(t0);
  EXPECT_FALSE(future.valid());

  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(resp.cancelled);
  EXPECT_FALSE(resp.timed_out);
  EXPECT_TRUE(resp.partial);
  EXPECT_LT(cancelled_ms, uncancelled_ms / 2)
      << "uncancelled=" << uncancelled_ms << "ms cancelled=" << cancelled_ms;
}

TEST(AsyncServiceTest, DroppedFutureCancelsAndFreesTheWorker) {
  LongQueryRig rig;
  QueryService service(&rig.db, rig.program, {1, 64});
  ASSERT_TRUE(service.status().ok());

  auto t0 = std::chrono::steady_clock::now();
  QueryResponse full = service.Eval(rig.Request());
  double uncancelled_ms = MsSince(t0);
  ASSERT_TRUE(full.status.ok());

  t0 = std::chrono::steady_clock::now();
  {
    QueryFuture dropped = service.Submit(rig.Request());
    while (service.pending() != 0) std::this_thread::yield();
    // Dropping the future unconsumed cancels the in-flight query.
  }
  // The single worker frees up almost immediately: a follow-up query on
  // the same (1-thread) service completes long before the abandoned query
  // could have run to completion.
  QueryRequest cheap{"sg", rig.source, rig.source, {}};
  cheap.options.max_iterations = 1;
  QueryResponse after = service.Eval(cheap);
  double followup_ms = MsSince(t0);
  EXPECT_TRUE(after.status.ok());
  EXPECT_LT(followup_ms, uncancelled_ms / 2)
      << "uncancelled=" << uncancelled_ms << "ms follow-up=" << followup_ms;
}

TEST(AsyncServiceTest, QueueOverloadShedsWithKOverloaded) {
  LongQueryRig rig;
  QueryService service(&rig.db, rig.program, {1, 2});
  ASSERT_TRUE(service.status().ok());

  // Park the single worker on a long query and fill the 2-deep queue.
  QueryFuture running = service.Submit(rig.Request());
  while (service.pending() != 0) std::this_thread::yield();
  QueryFuture queued1 = service.Submit(rig.Request());
  QueryFuture queued2 = service.Submit(rig.Request());
  EXPECT_EQ(service.pending(), 2u);

  // Past the high-water mark: shed immediately, future already completed.
  QueryFuture shed = service.Submit(rig.Request());
  EXPECT_TRUE(shed.Ready());
  QueryResponse shed_resp = shed.Take();
  EXPECT_EQ(shed_resp.status.code(), StatusCode::kOverloaded);
  EXPECT_TRUE(shed_resp.tuples.empty());

  // Unwind the parked work; queued queries are answered kCancelled
  // without evaluating.
  running.Cancel();
  queued1.Cancel();
  queued2.Cancel();
  QueryResponse r1 = queued1.Take();
  EXPECT_EQ(r1.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r1.stats.nodes, 0u);  // never evaluated
  QueryResponse r0 = running.Take();
  EXPECT_EQ(r0.status.code(), StatusCode::kCancelled);
  queued2.Wait();
}

TEST(AsyncServiceTest, BatchAdmissionShedsOverflowAndReportsCallback) {
  LongQueryRig rig;
  QueryService service(&rig.db, rig.program, {1, 2});
  ASSERT_TRUE(service.status().ok());

  // Park the worker so the queue state is deterministic.
  QueryFuture running = service.Submit(rig.Request());
  while (service.pending() != 0) std::this_thread::yield();

  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  BatchStats from_callback;
  // Distinct iteration caps (all far beyond what the query needs) give the
  // five requests distinct keys: identical requests would be collapsed by
  // in-batch dedup into a single submission, and this test is about the
  // queue overflowing.
  std::vector<QueryRequest> batch(5, rig.Request());
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].options.max_iterations = 1 << (20 + i);
  }
  BatchHandle handle =
      service.SubmitBatch(batch, [&](const BatchStats& stats) {
        std::lock_guard<std::mutex> lock(mu);
        fired = true;
        from_callback = stats;
        cv.notify_all();
      });
  ASSERT_EQ(handle.size(), 5u);
  // Queue depth 2: exactly two of the five were admitted, three shed.
  handle.Cancel();   // the two admitted ones unwind as kCancelled
  running.Cancel();  // free the worker so the admitted pair completes

  BatchStats stats;
  std::vector<QueryResponse> responses = handle.Take(&stats);
  EXPECT_EQ(stats.queries, 5u);
  EXPECT_EQ(stats.failed, 5u);
  EXPECT_EQ(stats.overloaded, 3u);
  EXPECT_EQ(stats.cancelled, 2u);
  size_t overloaded = 0, cancelled = 0;
  for (const QueryResponse& r : responses) {
    if (r.status.code() == StatusCode::kOverloaded) ++overloaded;
    if (r.status.code() == StatusCode::kCancelled) ++cancelled;
  }
  EXPECT_EQ(overloaded, 3u);
  EXPECT_EQ(cancelled, 2u);

  // The completion callback fired exactly once with the same aggregates.
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return fired; });
    EXPECT_EQ(from_callback.queries, 5u);
    EXPECT_EQ(from_callback.overloaded, 3u);
    EXPECT_EQ(from_callback.cancelled, 2u);
  }
  running.Wait();
}

TEST(AsyncServiceTest, DeadlineBudgetIncludesQueueTime) {
  LongQueryRig rig;
  QueryService service(&rig.db, rig.program, {1, 64});
  ASSERT_TRUE(service.status().ok());

  // Occupy the worker long enough for the queued request's budget to
  // expire before pickup.
  QueryFuture running = service.Submit(rig.Request());
  while (service.pending() != 0) std::this_thread::yield();
  QueryFuture starved = service.Submit(rig.Request(/*deadline_ms=*/5));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  running.Cancel();
  running.Wait();
  QueryResponse resp = starved.Take();
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.timed_out);
  EXPECT_FALSE(resp.partial);       // expired in the queue, not mid-flight
  EXPECT_EQ(resp.stats.nodes, 0u);  // answered without evaluating
}

TEST(AsyncServiceTest, SubmitBatchMatchesBlockingEvalBatch) {
  Database db;
  workloads::Fig7b(db, 16);
  Program program = SgProgram(db);
  QueryService service(&db, program, {2, 256});
  ASSERT_TRUE(service.status().ok());
  std::vector<QueryRequest> batch = AllSourcesBatch(db);

  BatchStats blocking_stats;
  auto blocking = service.EvalBatch(batch, &blocking_stats);

  BatchHandle handle = service.SubmitBatch(batch);
  BatchStats async_stats;
  auto async = handle.Take(&async_stats);

  ExpectSameResponses(blocking, async);
  EXPECT_EQ(blocking_stats.tuples, async_stats.tuples);
  EXPECT_EQ(blocking_stats.fetches, async_stats.fetches);
  EXPECT_EQ(blocking_stats.failed, async_stats.failed);
  EXPECT_EQ(async_stats.overloaded, 0u);
}

TEST(AsyncServiceTest, BlockingBatchBackpressuresInsteadOfShedding) {
  // A queue far smaller than the batch: the blocking path waits for room
  // rather than shedding, so every query completes.
  Database db;
  workloads::Fig7b(db, 16);
  QueryService service(&db, SgProgram(db), {2, 2});
  ASSERT_TRUE(service.status().ok());
  std::vector<QueryRequest> batch = AllSourcesBatch(db);
  ASSERT_GT(batch.size(), 4u);
  BatchStats stats;
  auto responses = service.EvalBatch(batch, &stats);
  EXPECT_EQ(stats.queries, batch.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.overloaded, 0u);
  for (const QueryResponse& r : responses) EXPECT_TRUE(r.status.ok());
}

TEST(ServiceTest, ConcurrentClientBatches) {
  // Two client threads hammering the same service: batches serialize onto
  // the pool and each client still sees exactly its own results.
  Database db;
  workloads::Fig7b(db, 12);
  Program program = SgProgram(db);
  QueryService service(&db, program, {2});
  ASSERT_TRUE(service.status().ok());
  std::vector<QueryRequest> batch = AllSourcesBatch(db);
  auto expected = service.EvalBatch(batch);

  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        auto got = service.EvalBatch(batch);
        if (got.size() != expected.size()) {
          ++mismatches;
          continue;
        }
        for (size_t j = 0; j < got.size(); ++j) {
          if (got[j].tuples != expected[j].tuples) ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace binchain
