// Admin-plane HTTP server: request parsing and defensive limits on the
// raw socket (404/405/400/431, slowloris timeout, ephemeral port bind,
// query-string decoding), then the registered endpoints over a real
// QueryService — /metrics under concurrent scrape + query load (the TSan
// target), /readyz flipping 503 -> 200 across FinishRecovery, and
// /debug/trace rendering well-formed Chrome trace-event JSON carrying
// both query and publish spans.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/answer_cache.h"
#include "datalog/parser.h"
#include "durability/recovery.h"
#include "live/snapshot_manager.h"
#include "obs/metrics.h"
#include "server/admin_endpoints.h"
#include "server/admin_server.h"
#include "service/query_service.h"
#include "storage/database.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

namespace fs = std::filesystem;
using server::AdminServer;
using server::AdminServerOptions;
using server::HttpRequest;
using server::HttpResponse;

/// Self-cleaning scratch directory for the recovery-gated scenario.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "binchain_srv_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* p = mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path_ = p;
  }
  ~TempDir() {
    std::error_code ec;
    if (!path_.empty()) fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// One parsed HTTP exchange as the raw-socket client below sees it.
struct FetchResult {
  bool ok = false;       // connected, sent, and got a parseable status line
  int status = 0;
  std::string head;      // status line + headers
  std::string body;
};

int ConnectTo(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// Sends `raw` verbatim and reads until the server closes the connection
/// (the server always answers `Connection: close`).
FetchResult Exchange(uint16_t port, const std::string& raw) {
  FetchResult r;
  int fd = ConnectTo(port);
  if (fd < 0) return r;
  if (send(fd, raw.data(), raw.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(raw.size())) {
    close(fd);
    return r;
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  size_t split = resp.find("\r\n\r\n");
  if (split == std::string::npos) return r;
  r.head = resp.substr(0, split);
  r.body = resp.substr(split + 4);
  // "HTTP/1.1 NNN Reason"
  if (r.head.rfind("HTTP/1.1 ", 0) != 0 || r.head.size() < 12) return r;
  r.status = std::atoi(r.head.c_str() + 9);
  r.ok = r.status != 0;
  return r;
}

FetchResult Get(uint16_t port, const std::string& target) {
  return Exchange(port, "GET " + target +
                            " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

/// Minimal JSON well-formedness scan: balanced {}/[] outside strings,
/// string escapes honored, nothing but whitespace after the close. Not a
/// full parser — but any brace/quote slip in a renderer fails it, which
/// is exactly the regression class the trace endpoints can have.
bool JsonBalanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  size_t i = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      char open = stack.back();
      stack.pop_back();
      if ((c == '}') != (open == '{')) return false;
      if (stack.empty()) break;  // top-level value closed
    }
  }
  if (in_string || !stack.empty() || i >= s.size()) return false;
  for (++i; i < s.size(); ++i) {
    if (s[i] != ' ' && s[i] != '\n' && s[i] != '\r' && s[i] != '\t') {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------- raw server tests

TEST(AdminServerTest, ServesHandlersAndResolvesEphemeralPort) {
  AdminServer srv;  // default options: port 0
  srv.Handle("/ping", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "pong\n";
    return resp;
  });
  ASSERT_TRUE(srv.Start().ok());
  ASSERT_NE(srv.port(), 0);
  FetchResult r = Get(srv.port(), "/ping");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "pong\n");
  EXPECT_NE(r.head.find("Content-Length: 5"), std::string::npos) << r.head;
  EXPECT_NE(r.head.find("Connection: close"), std::string::npos);
  EXPECT_GE(srv.requests_served(), 1u);
  srv.Stop();
  srv.Stop();  // idempotent
  EXPECT_FALSE(srv.running());
}

TEST(AdminServerTest, UnknownPathIs404AndCountedAsError) {
  AdminServer srv;
  ASSERT_TRUE(srv.Start().ok());
  FetchResult r = Get(srv.port(), "/no/such/route");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 404);
  EXPECT_NE(r.body.find("/no/such/route"), std::string::npos);
  EXPECT_GE(srv.request_errors(), 1u);
}

TEST(AdminServerTest, NonGetIs405AndGarbageIs400) {
  AdminServer srv;
  srv.Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(srv.Start().ok());
  FetchResult post = Exchange(
      srv.port(), "POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(post.ok);
  EXPECT_EQ(post.status, 405);
  FetchResult garbage = Exchange(srv.port(), "NONSENSE\r\n\r\n");
  ASSERT_TRUE(garbage.ok);
  EXPECT_EQ(garbage.status, 400);
  EXPECT_GE(srv.request_errors(), 2u);
}

TEST(AdminServerTest, OversizedHeadIs431) {
  AdminServerOptions opts;
  opts.max_request_bytes = 256;
  AdminServer srv(opts);
  srv.Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(srv.Start().ok());
  std::string huge = "GET / HTTP/1.1\r\nX-Padding: ";
  huge.append(4096, 'x');
  huge += "\r\n\r\n";
  FetchResult r = Exchange(srv.port(), huge);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 431);
}

TEST(AdminServerTest, SlowlorisConnectionIsClosedAfterTimeout) {
  AdminServerOptions opts;
  opts.io_timeout_ms = 200;
  AdminServer srv(opts);
  srv.Handle("/", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(srv.Start().ok());
  int fd = ConnectTo(srv.port());
  ASSERT_GE(fd, 0);
  // A header-in-progress that never completes. The server must give up on
  // its own (recv timeout) rather than pinning the handler forever.
  const char partial[] = "GET / HTTP/1.1\r\nX-Stall: ";
  ASSERT_GT(send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL), 0);
  char buf[64];
  ssize_t n = recv(fd, buf, sizeof(buf), 0);  // blocks until server closes
  EXPECT_LE(n, 0);
  close(fd);
  EXPECT_GE(srv.request_errors(), 1u);
  // The pool is still healthy after dropping the stalled client.
  FetchResult r = Get(srv.port(), "/");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
}

TEST(AdminServerTest, QueryParamsAreDecodedAndStripped) {
  AdminServer srv;
  srv.Handle("/echo", [](const HttpRequest& req) {
    HttpResponse resp;
    for (const auto& kv : req.params) {
      resp.body += kv.first + "=" + kv.second + ";";
    }
    return resp;
  });
  ASSERT_TRUE(srv.Start().ok());
  FetchResult r = Get(srv.port(), "/echo?a=1&b=x%20y+z&flag");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "a=1;b=x y z;flag=;");
}

// --------------------------------------------------- endpoints over a live
// service

struct LiveFixture {
  std::unique_ptr<SnapshotManager> manager;
  std::unique_ptr<Program> program;
  std::unique_ptr<QueryService> service;
  AdminServer srv;

  explicit LiveFixture(int n = 64, size_t threads = 2) {
    auto genesis = std::make_unique<Database>();
    workloads::Fig7a(*genesis, n);
    program = std::make_unique<Program>(
        ParseProgram(workloads::SgProgramText(), genesis->symbols()).take());
    manager = std::make_unique<SnapshotManager>(std::move(genesis));
    QueryServiceOptions opts;
    opts.num_threads = threads;
    service =
        std::make_unique<QueryService>(manager.get(), *program, opts);
    EXPECT_TRUE(service->status().ok()) << service->status().message();
    server::RegisterAdminEndpoints(&srv, service.get(), manager.get());
    EXPECT_TRUE(srv.Start().ok());
  }
};

TEST(AdminEndpointsTest, MetricsScrapeIsPrometheusWithProcessFamily) {
  LiveFixture fx;
  QueryRequest req{"sg", "", "", {}};
  ASSERT_TRUE(fx.service->Eval(req).status.ok());

  FetchResult r = Get(fx.srv.port(), "/metrics");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.head.find("text/plain; version=0.0.4"), std::string::npos)
      << r.head;
  // The satellite families: process-level gauges registered at first
  // Global() use, alongside the service counters the query just bumped.
  EXPECT_NE(r.body.find("binchain_process_uptime_seconds"),
            std::string::npos);
  EXPECT_NE(r.body.find("binchain_process_start_time_seconds"),
            std::string::npos);
  EXPECT_NE(r.body.find("binchain_process_build_info"), std::string::npos);
  EXPECT_NE(r.body.find("binchain_service_queries_total"),
            std::string::npos);

  FetchResult j = Get(fx.srv.port(), "/metrics.json");
  ASSERT_TRUE(j.ok);
  EXPECT_EQ(j.status, 200);
  EXPECT_NE(j.head.find("application/json"), std::string::npos);
  EXPECT_TRUE(JsonBalanced(j.body)) << j.body.substr(0, 200);
}

// The TSan target: scrapers hammering every endpoint while the service
// evaluates and the manager publishes. Any unsynchronized read the
// handlers make of service/manager state is a data race here.
TEST(AdminEndpointsTest, ConcurrentScrapesDuringQueryAndPublishLoad) {
  LiveFixture fx(64, 2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  const char* targets[] = {"/metrics", "/debug/queries", "/debug/trace",
                           "/debug/epochs", "/readyz"};
  for (const char* target : targets) {
    scrapers.emplace_back([&fx, &stop, target] {
      while (!stop.load(std::memory_order_acquire)) {
        FetchResult r = Get(fx.srv.port(), target);
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(r.status, 200);
      }
    });
  }
  for (int round = 0; round < 10; ++round) {
    std::vector<QueryRequest> batch;
    for (int i = 0; i < 4; ++i) batch.push_back(QueryRequest{"sg", "", "", {}});
    for (const QueryResponse& resp : fx.service->EvalBatch(batch, nullptr)) {
      EXPECT_TRUE(resp.status.ok());
    }
    fx.manager->AddFact("up", {"r" + std::to_string(round), "s"});
    EXPECT_TRUE(fx.manager->Publish().status.ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();
  EXPECT_GE(fx.srv.requests_served(), scrapers.size());
}

TEST(AdminEndpointsTest, ReadyzFlips503To200AcrossFinishRecovery) {
  TempDir dir;
  auto rm = durability::RecoveryManager::Load(dir.path()).take();
  auto genesis = rm->BuildGenesis();
  workloads::Fig7a(*genesis, 16);
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
  SnapshotManager manager(std::move(genesis));
  QueryService service(&manager, rm.get(), program, {2, 64});
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  AdminServer srv;
  server::RegisterAdminEndpoints(&srv, &service, &manager);
  ASSERT_TRUE(srv.Start().ok());

  // Gate closed: alive but not ready — and /debug/epochs says so too.
  FetchResult alive = Get(srv.port(), "/healthz");
  ASSERT_TRUE(alive.ok);
  EXPECT_EQ(alive.status, 200);
  FetchResult held = Get(srv.port(), "/readyz");
  ASSERT_TRUE(held.ok);
  EXPECT_EQ(held.status, 503);
  EXPECT_NE(held.body.find("recovery in progress"), std::string::npos);
  FetchResult epochs = Get(srv.port(), "/debug/epochs");
  ASSERT_TRUE(epochs.ok);
  EXPECT_NE(epochs.body.find("\"serving\": false"), std::string::npos);

  ASSERT_TRUE(service.FinishRecovery().ok());

  FetchResult ready = Get(srv.port(), "/readyz");
  ASSERT_TRUE(ready.ok);
  EXPECT_EQ(ready.status, 200);
  EXPECT_EQ(ready.body, "ready\n");
  epochs = Get(srv.port(), "/debug/epochs");
  ASSERT_TRUE(epochs.ok);
  EXPECT_NE(epochs.body.find("\"serving\": true"), std::string::npos);
  EXPECT_NE(epochs.body.find("\"wal\": {"), std::string::npos);
  EXPECT_TRUE(JsonBalanced(epochs.body)) << epochs.body;
}

TEST(AdminEndpointsTest, DebugTraceIsChromeTraceJsonWithBothSpanKinds) {
  LiveFixture fx;
  // One publish and a few queries so both rings have spans.
  fx.manager->AddFact("up", {"t1", "t2"});
  ASSERT_TRUE(fx.manager->Publish().status.ok());
  for (int i = 0; i < 3; ++i) {
    QueryRequest req{"sg", "", "", {}};
    ASSERT_TRUE(fx.service->Eval(req).status.ok());
  }

  FetchResult r = Get(fx.srv.port(), "/debug/trace");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.head.find("application/json"), std::string::npos);
  EXPECT_TRUE(JsonBalanced(r.body)) << r.body.substr(0, 400);
  EXPECT_NE(r.body.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(r.body.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(r.body.find("\"name\": \"process_name\""), std::string::npos);
  // Both span kinds made it into the export.
  EXPECT_NE(r.body.find("\"cat\": \"query\""), std::string::npos);
  EXPECT_NE(r.body.find("\"cat\": \"publish\""), std::string::npos);
  EXPECT_NE(r.body.find("\"name\": \"publish e1\""), std::string::npos);

  // ?last=1 bounds each ring independently: exactly one query slice
  // (plus its phase children) and still the one publish.
  FetchResult bounded = Get(fx.srv.port(), "/debug/trace?last=1");
  ASSERT_TRUE(bounded.ok);
  size_t query_slices = 0;
  for (size_t pos = bounded.body.find("\"name\": \"query ");
       pos != std::string::npos;
       pos = bounded.body.find("\"name\": \"query ", pos + 1)) {
    ++query_slices;
  }
  EXPECT_EQ(query_slices, 1u);
  EXPECT_NE(bounded.body.find("\"cat\": \"publish\""), std::string::npos);

  // /debug/queries is the raw flight-recorder array.
  FetchResult q = Get(fx.srv.port(), "/debug/queries");
  ASSERT_TRUE(q.ok);
  EXPECT_TRUE(JsonBalanced(q.body)) << q.body.substr(0, 200);
  EXPECT_NE(q.body.find("\"query_id\": "), std::string::npos);
}

// /debug/cache on a cache-less service must say so (and stay valid JSON)
// rather than 404 or fabricate stats.
TEST(AdminEndpointsTest, DebugCacheReportsDisabledWithoutACache) {
  LiveFixture fx;
  FetchResult r = Get(fx.srv.port(), "/debug/cache");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(JsonBalanced(r.body)) << r.body;
  EXPECT_NE(r.body.find("\"enabled\": false"), std::string::npos);
}

// Regression guard for the answer cache vs the recovery gate: admission is
// checked before the cache, so a cache-enabled service must keep answering
// kUnavailable until FinishRecovery() — a cache hit must never leak a
// pre-recovery answer. After the gate opens, repeats hit as usual and
// /debug/cache exposes the stats.
TEST(AdminEndpointsTest, CacheEnabledServiceStaysGatedUntilRecovery) {
  TempDir dir;
  auto rm = durability::RecoveryManager::Load(dir.path()).take();
  auto genesis = rm->BuildGenesis();
  workloads::Fig7a(*genesis, 16);
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
  SnapshotManager manager(std::move(genesis));
  QueryServiceOptions opts;
  opts.num_threads = 2;
  opts.answer_cache_bytes = 1 << 20;
  QueryService service(&manager, rm.get(), program, opts);
  ASSERT_TRUE(service.status().ok()) << service.status().message();
  ASSERT_NE(service.answer_cache(), nullptr);

  AdminServer srv;
  server::RegisterAdminEndpoints(&srv, &service, &manager);
  ASSERT_TRUE(srv.Start().ok());

  QueryRequest req{"sg", "a", "", {}};
  // Gate closed: both submission paths refuse, and nothing reaches the
  // cache (no lookups, no fills a later hit could replay).
  QueryResponse gated = service.Eval(req);
  EXPECT_EQ(gated.status.code(), StatusCode::kUnavailable);
  QueryResponse gated_async = service.Submit(req).Take();
  EXPECT_EQ(gated_async.status.code(), StatusCode::kUnavailable);
  cache::CacheSnapshot snap = service.answer_cache()->Snapshot();
  EXPECT_EQ(snap.hits + snap.misses, 0u);
  EXPECT_EQ(snap.entries, 0u);

  ASSERT_TRUE(service.FinishRecovery().ok());

  QueryResponse first = service.Eval(req);
  ASSERT_TRUE(first.status.ok()) << first.status.message();
  EXPECT_FALSE(first.trace.cache_hit);
  QueryResponse second = service.Eval(req);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.trace.cache_hit);
  EXPECT_EQ(second.tuples, first.tuples);
  EXPECT_GE(service.answer_cache()->Snapshot().hits, 1u);

  FetchResult r = Get(srv.port(), "/debug/cache");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(JsonBalanced(r.body)) << r.body;
  EXPECT_NE(r.body.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(r.body.find("\"hits\": "), std::string::npos);
}

}  // namespace
}  // namespace binchain
