#include <gtest/gtest.h>

#include "workloads/workloads.h"

namespace binchain {
namespace {

TEST(WorkloadsTest, Fig7aShape) {
  Database db;
  std::string a = workloads::Fig7a(db, 7);
  EXPECT_EQ(a, "a");
  EXPECT_EQ(db.Find("up")->size(), 14u);    // a->b_i, b_i->c
  EXPECT_EQ(db.Find("flat")->size(), 1u);
  EXPECT_EQ(db.Find("down")->size(), 14u);
}

TEST(WorkloadsTest, Fig7bShape) {
  Database db;
  workloads::Fig7b(db, 5);
  EXPECT_EQ(db.Find("up")->size(), 4u);
  EXPECT_EQ(db.Find("down")->size(), 4u);
  EXPECT_EQ(db.Find("flat")->size(), 5u);  // every a_k lands on b_n
}

TEST(WorkloadsTest, Fig7cShape) {
  Database db;
  workloads::Fig7c(db, 5);
  EXPECT_EQ(db.Find("up")->size(), 4u);
  EXPECT_EQ(db.Find("down")->size(), 4u);
  EXPECT_EQ(db.Find("flat")->size(), 5u);  // one rung per level
  EXPECT_TRUE(db.Find("flat")->Contains(
      {*db.symbols().Find("a3"), *db.symbols().Find("b3")}));
}

TEST(WorkloadsTest, Fig8CyclesAreClosed) {
  Database db;
  workloads::Fig8(db, 3, 4);
  EXPECT_EQ(db.Find("up")->size(), 3u);
  EXPECT_EQ(db.Find("down")->size(), 4u);
  // Cycle closure edges exist.
  EXPECT_TRUE(db.Find("up")->Contains(
      {*db.symbols().Find("a3"), *db.symbols().Find("a1")}));
  EXPECT_TRUE(db.Find("down")->Contains(
      {*db.symbols().Find("b1"), *db.symbols().Find("b4")}));
}

TEST(WorkloadsTest, ChainAndTree) {
  Database db;
  std::string first = workloads::Chain(db, "e", "u", 6);
  EXPECT_EQ(first, "u1");
  EXPECT_EQ(db.Find("e")->size(), 5u);

  Database db2;
  std::string leaf = workloads::UpTree(db2, "up", "t", 3);
  EXPECT_EQ(db2.Find("up")->size(), 6u);  // 7 nodes, 6 parent edges
  EXPECT_EQ(leaf, "t7");
}

TEST(WorkloadsTest, RandomGraphIsDeterministic) {
  Database a, b;
  Rng ra(99), rb(99);
  workloads::RandomGraph(a, "e", "v", 20, 40, ra);
  workloads::RandomGraph(b, "e", "v", 20, 40, rb);
  EXPECT_EQ(a.Find("e")->size(), b.Find("e")->size());
  for (const Tuple& t : a.Find("e")->tuples()) {
    Tuple tb{*b.symbols().Find(a.symbols().Name(t[0])),
             *b.symbols().Find(a.symbols().Name(t[1]))};
    EXPECT_TRUE(b.Find("e")->Contains(tb));
  }
}

TEST(WorkloadsTest, FlightsAreWellFormed) {
  Database db;
  workloads::FlightSpec spec;
  spec.airports = 4;
  spec.flights = 25;
  std::string p0 = workloads::BuildFlights(db, spec);
  EXPECT_EQ(p0, "p0");
  const Relation* flight = db.Find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->arity(), 4u);
  for (const Tuple& t : flight->tuples()) {
    auto dt = db.symbols().IntValue(t[1]);
    auto at = db.symbols().IntValue(t[3]);
    ASSERT_TRUE(dt.has_value());
    ASSERT_TRUE(at.has_value());
    EXPECT_LT(*dt, *at);           // flights land after departing
    EXPECT_NE(t[0], t[2]);         // no self-loops
  }
  EXPECT_NE(db.Find("is-deptime"), nullptr);
}

}  // namespace
}  // namespace binchain
