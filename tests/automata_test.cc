#include <gtest/gtest.h>

#include "automata/nfa.h"

namespace binchain {
namespace {

class NfaTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  SymbolId a_ = symbols_.Intern("a");
  SymbolId b_ = symbols_.Intern("b");
  SymbolId p_ = symbols_.Intern("p");

  static size_t CountKind(const Nfa& nfa, NfaLabel::Kind kind) {
    size_t n = 0;
    for (uint32_t s = 0; s < nfa.NumStates(); ++s) {
      for (const NfaTransition& t : nfa.Out(s)) {
        if (t.label.kind == kind) ++n;
      }
    }
    return n;
  }
};

TEST_F(NfaTest, PredLeafIsSingleTransition) {
  Nfa nfa = BuildNfa(Rex::Pred(a_), [](SymbolId) { return false; });
  EXPECT_EQ(nfa.NumStates(), 2u);
  EXPECT_EQ(CountKind(nfa, NfaLabel::Kind::kRel), 1u);
  EXPECT_EQ(nfa.Out(nfa.initial())[0].target, nfa.final());
}

TEST_F(NfaTest, DerivedClassifierControlsLabelKind) {
  Nfa nfa = BuildNfa(Rex::Concat2(Rex::Pred(a_), Rex::Pred(p_)),
                     [&](SymbolId s) { return s == p_; });
  EXPECT_EQ(CountKind(nfa, NfaLabel::Kind::kRel), 1u);
  EXPECT_EQ(CountKind(nfa, NfaLabel::Kind::kDerived), 1u);
}

TEST_F(NfaTest, EmptyExpressionDisconnects) {
  Nfa nfa = BuildNfa(Rex::Empty(), [](SymbolId) { return false; });
  EXPECT_EQ(CountKind(nfa, NfaLabel::Kind::kId), 0u);
  EXPECT_NE(nfa.initial(), nfa.final());
}

TEST_F(NfaTest, StarAllowsSkipAndRepeat) {
  Nfa nfa = BuildNfa(Rex::Star(Rex::Pred(a_)), [](SymbolId) { return false; });
  // Thompson star: 4 id transitions (skip, enter, exit, repeat).
  EXPECT_EQ(CountKind(nfa, NfaLabel::Kind::kId), 4u);
  EXPECT_EQ(CountKind(nfa, NfaLabel::Kind::kRel), 1u);
}

TEST_F(NfaTest, SpliceCopyRenumbersStates) {
  Nfa m = BuildNfa(Rex::Pred(a_), [](SymbolId) { return false; });
  Nfa em;
  uint32_t off1 = em.SpliceCopy(m);
  uint32_t off2 = em.SpliceCopy(m);
  EXPECT_EQ(off1, 0u);
  EXPECT_EQ(off2, m.NumStates());
  EXPECT_EQ(em.NumStates(), 2 * m.NumStates());
  // The copied transitions point inside their own copy.
  EXPECT_EQ(em.Out(off2 + m.initial())[0].target, off2 + m.final());
}

TEST_F(NfaTest, RemoveDerivedTransition) {
  Nfa nfa = BuildNfa(Rex::Pred(p_), [&](SymbolId s) { return s == p_; });
  uint32_t from = nfa.initial();
  uint32_t to = nfa.final();
  EXPECT_TRUE(nfa.RemoveDerivedTransition(from, p_, to));
  EXPECT_FALSE(nfa.RemoveDerivedTransition(from, p_, to));
  EXPECT_TRUE(nfa.Out(from).empty());
}

TEST_F(NfaTest, InvertedLeafKeepsFlag) {
  Nfa nfa =
      BuildNfa(Rex::Pred(a_, /*inverted=*/true), [](SymbolId) { return false; });
  EXPECT_TRUE(nfa.Out(nfa.initial())[0].label.inverted);
}

TEST_F(NfaTest, FigureOneAutomatonShape) {
  // e_p = (b3.b4* U b2.p).b1 (Figure 1): one derived transition, four
  // relation transitions.
  SymbolId b1 = symbols_.Intern("b1"), b2 = symbols_.Intern("b2"),
           b3 = symbols_.Intern("b3"), b4 = symbols_.Intern("b4");
  RexPtr e = Rex::Concat2(
      Rex::Union2(Rex::Concat2(Rex::Pred(b3), Rex::Star(Rex::Pred(b4))),
                  Rex::Concat2(Rex::Pred(b2), Rex::Pred(p_))),
      Rex::Pred(b1));
  Nfa nfa = BuildNfa(e, [&](SymbolId s) { return s == p_; });
  EXPECT_EQ(CountKind(nfa, NfaLabel::Kind::kRel), 4u);
  EXPECT_EQ(CountKind(nfa, NfaLabel::Kind::kDerived), 1u);
}

}  // namespace
}  // namespace binchain
