// The answer cache in front of QueryService: exact-match hits replay the
// stored response verbatim, publishes invalidate exactly the entries whose
// supporting relations changed (copy-on-write pointer identity plus the
// dead_mutations tombstone counter), concurrent identical misses collapse
// onto one evaluation (the TSan target of this file), and the byte cap
// holds under eviction. Throughout, a cache-on service must be
// observationally identical to a cache-off one — the cache is an
// optimization, never a semantics change.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/answer_cache.h"
#include "datalog/parser.h"
#include "live/snapshot_manager.h"
#include "service/query_service.h"
#include "storage/database.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

using cache::AnswerCache;
using cache::CacheSnapshot;
using cache::CachedAnswer;
using cache::SupportDep;

/// Two independent closures over disjoint base relations, so the support
/// sets separate cleanly: support(pup) = {up}, support(pdown) = {down}.
/// A publish that touches only `down` must leave every pup entry valid.
const char* kTwoClosureProgram =
    "pup(X, Y) :- up(X, Y).\n"
    "pup(X, Y) :- up(X, Z), pup(Z, Y).\n"
    "pdown(X, Y) :- down(X, Y).\n"
    "pdown(X, Y) :- down(X, Z), pdown(Z, Y).\n";

/// up-chain u1 -> ... -> u<n> and down-chain d1 -> ... -> d<n>, built in a
/// deterministic order so two independently built databases intern the
/// same symbols to the same ids (tuples compare equal across services).
std::unique_ptr<Database> TwoChainGenesis(size_t n) {
  auto db = std::make_unique<Database>();
  db->GetOrCreate("up", 2);
  db->GetOrCreate("down", 2);
  for (size_t i = 1; i < n; ++i) {
    db->AddFact("up", {"u" + std::to_string(i), "u" + std::to_string(i + 1)});
  }
  for (size_t i = 1; i < n; ++i) {
    db->AddFact("down",
                {"d" + std::to_string(i), "d" + std::to_string(i + 1)});
  }
  return db;
}

QueryRequest Req(const char* pred, const std::string& source) {
  QueryRequest req;
  req.pred = pred;
  req.source = source;
  return req;
}

/// A live service over the two-chain workload with the answer cache on.
struct CacheRig {
  explicit CacheRig(size_t chain = 8, size_t cache_bytes = 1 << 20)
      : manager([&] {
          auto genesis = TwoChainGenesis(chain);
          program = ParseProgram(kTwoClosureProgram, genesis->symbols()).take();
          return genesis;
        }()) {
    QueryService::Options opts;
    opts.num_threads = 2;
    opts.answer_cache_bytes = cache_bytes;
    service = std::make_unique<QueryService>(&manager, program, opts);
    EXPECT_TRUE(service->status().ok()) << service->status().message();
  }

  CacheSnapshot Snap() const { return service->answer_cache()->Snapshot(); }

  Program program;
  SnapshotManager manager;
  std::unique_ptr<QueryService> service;
};

TEST(AnswerCacheTest, MissFillsThenHitReplaysVerbatim) {
  CacheRig rig;
  QueryRequest req = Req("pup", "u1");

  QueryResponse first = rig.service->Eval(req);
  ASSERT_TRUE(first.status.ok()) << first.status.message();
  EXPECT_EQ(first.tuples.size(), 7u);  // u1 reaches u2..u8
  EXPECT_FALSE(first.trace.cache_hit);
  CacheSnapshot snap = rig.Snap();
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.hits, 0u);
  EXPECT_EQ(snap.inserts, 1u);
  EXPECT_EQ(snap.entries, 1u);
  EXPECT_GT(snap.bytes, 0u);

  QueryResponse second = rig.service->Eval(req);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.trace.cache_hit);
  // The replay is verbatim: answers, effort counters, and fetch counts all
  // come from the stored evaluation, so batch totals cannot drift.
  EXPECT_EQ(second.tuples, first.tuples);
  EXPECT_EQ(AnswerCache::HashTuples(second.tuples),
            AnswerCache::HashTuples(first.tuples));
  EXPECT_EQ(second.fetches, first.fetches);
  EXPECT_EQ(second.stats.nodes, first.stats.nodes);
  EXPECT_EQ(second.stats.iterations, first.stats.iterations);
  snap = rig.Snap();
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.entries, 1u);

  // A different binding is a different key.
  QueryResponse other = rig.service->Eval(Req("pup", "u3"));
  ASSERT_TRUE(other.status.ok());
  EXPECT_FALSE(other.trace.cache_hit);
  EXPECT_EQ(rig.Snap().misses, 2u);
  EXPECT_EQ(rig.Snap().entries, 2u);
}

TEST(AnswerCacheTest, ClearDropsEntriesButKeepsCounters) {
  CacheRig rig;
  ASSERT_TRUE(rig.service->Eval(Req("pup", "u1")).status.ok());
  ASSERT_TRUE(rig.service->Eval(Req("pdown", "d1")).status.ok());
  ASSERT_EQ(rig.Snap().entries, 2u);

  rig.service->answer_cache()->Clear();
  CacheSnapshot snap = rig.Snap();
  EXPECT_EQ(snap.entries, 0u);
  EXPECT_EQ(snap.bytes, 0u);
  EXPECT_EQ(snap.misses, 2u);  // history survives Clear()

  QueryResponse r = rig.service->Eval(Req("pup", "u1"));
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.trace.cache_hit);
}

TEST(AnswerCacheTest, EvictionHoldsByteCapAndKeepsHotEntry) {
  // 32 KiB across 8 shards = 4 KiB per shard; a 64-node chain yields
  // answers of up to 63 tuples, so 64 distinct entries cannot all fit.
  CacheRig rig(/*chain=*/64, /*cache_bytes=*/32 << 10);
  QueryRequest hot = Req("pup", "u1");
  ASSERT_TRUE(rig.service->Eval(hot).status.ok());
  for (size_t i = 2; i <= 64; ++i) {
    ASSERT_TRUE(
        rig.service->Eval(Req("pup", "u" + std::to_string(i))).status.ok());
    // Re-touch the hot entry so it is promoted to the protected segment;
    // eviction drains probation first, so the hot entry outlives the scan.
    QueryResponse h = rig.service->Eval(hot);
    ASSERT_TRUE(h.status.ok());
    EXPECT_TRUE(h.trace.cache_hit) << "hot entry evicted after u" << i;
  }
  CacheSnapshot snap = rig.Snap();
  EXPECT_GT(snap.evictions, 0u);
  EXPECT_LE(snap.bytes, snap.max_bytes);
  EXPECT_LT(snap.entries, 64u);
}

TEST(AnswerCacheTest, PublishInvalidatesOnlyTouchedSupportSets) {
  CacheRig rig;
  QueryResponse pup1 = rig.service->Eval(Req("pup", "u1"));
  QueryResponse pdown1 = rig.service->Eval(Req("pdown", "d1"));
  ASSERT_TRUE(pup1.status.ok());
  ASSERT_TRUE(pdown1.status.ok());
  ASSERT_EQ(rig.Snap().entries, 2u);

  auto old_tip = rig.manager.Acquire();
  rig.manager.AddFact("down", {"d8", "d9"});
  ASSERT_TRUE(rig.manager.Publish().status.ok());
  auto new_tip = rig.manager.Acquire();

  // The invalidation signal is storage-level copy-on-write identity:
  // the publish touched only `down`, so the new epoch re-shares the very
  // same `up` Relation object and replaces the `down` one.
  EXPECT_EQ(new_tip->Find("up"), old_tip->Find("up"));
  EXPECT_NE(new_tip->Find("down"), old_tip->Find("down"));

  CacheSnapshot snap = rig.Snap();
  EXPECT_EQ(snap.invalidations, 1u);  // exactly the pdown entry
  EXPECT_EQ(snap.entries, 1u);

  // pup still hits — and at the *new* epoch, because its support set is
  // untouched the cached answer is provably still correct.
  QueryResponse pup2 = rig.service->Eval(Req("pup", "u1"));
  ASSERT_TRUE(pup2.status.ok());
  EXPECT_TRUE(pup2.trace.cache_hit);
  EXPECT_EQ(pup2.epoch, 1u);
  EXPECT_EQ(pup2.tuples, pup1.tuples);

  // pdown misses and re-evaluates against the grown chain.
  QueryResponse pdown2 = rig.service->Eval(Req("pdown", "d1"));
  ASSERT_TRUE(pdown2.status.ok());
  EXPECT_FALSE(pdown2.trace.cache_hit);
  EXPECT_EQ(pdown2.tuples.size(), pdown1.tuples.size() + 1);
}

TEST(AnswerCacheTest, TombstoneRetractionInvalidatesThroughPublish) {
  CacheRig rig;
  QueryResponse before = rig.service->Eval(Req("pup", "u1"));
  ASSERT_TRUE(before.status.ok());
  ASSERT_EQ(before.tuples.size(), 7u);

  rig.manager.DeleteFact("up", {"u4", "u5"});
  ASSERT_TRUE(rig.manager.Publish().status.ok());
  auto tip = rig.manager.Acquire();
  EXPECT_GT(tip->Find("up")->dead_mutations(), 0u);

  EXPECT_EQ(rig.Snap().invalidations, 1u);
  QueryResponse after = rig.service->Eval(Req("pup", "u1"));
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.trace.cache_hit);
  EXPECT_EQ(after.tuples.size(), 3u);  // u1 now reaches only u2..u4
}

// The dead_mutations counter is the defensive second check behind pointer
// identity: even when an entry's support pointer still matches (as under
// pointer reuse across an ABA-style recycle), a differing tombstone count
// must invalidate. Exercised directly against the cache, which is the only
// way to hold the pointer fixed while the counter disagrees.
TEST(AnswerCacheTest, DeadMutationsMismatchInvalidatesDespitePointerMatch) {
  Database db;
  db.AddFact("up", {"a", "b"});
  SymbolId up_id = *db.symbols().Find("up");

  AnswerCache cache(1 << 20, /*program_fingerprint=*/1);
  auto answer = std::make_shared<CachedAnswer>();
  answer->tuples.push_back({0, 1});
  answer->result_hash = AnswerCache::HashTuples(answer->tuples);

  // Stamp a *different* epoch than the lookup sees, so Lookup takes the
  // per-dep re-validation path instead of the validated-epoch fast path
  // (at the stamped epoch an entry is valid by construction).
  const uint64_t other_epoch = db.epoch() + 1;
  SupportDep fresh{up_id, db.FindSharedById(up_id),
                   db.Find("up")->dead_mutations()};
  cache.Insert("k-fresh", {fresh}, answer, other_epoch);
  EXPECT_NE(cache.Lookup("k-fresh", db), nullptr);

  SupportDep stale{up_id, db.FindSharedById(up_id),
                   db.Find("up")->dead_mutations() + 1};
  cache.Insert("k-stale", {stale}, answer, other_epoch);
  EXPECT_EQ(cache.Lookup("k-stale", db), nullptr);  // dropped as invalid
  EXPECT_EQ(cache.Snapshot().invalidations, 1u);
}

// Concurrent identical misses must collapse onto one evaluation: one
// leader runs, every other submission parks on the flight and replays the
// leader's response. Run under TSan in CI.
TEST(AnswerCacheTest, SingleFlightCollapsesConcurrentIdenticalSubmits) {
  auto genesis = std::make_unique<Database>();
  // Large enough that later submissions land while the leader is still
  // evaluating (Fig 7(b) is the Theta(n^2) same-generation sample).
  std::string source = workloads::Fig7b(*genesis, 192);
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
  SnapshotManager manager(std::move(genesis));
  QueryService::Options opts;
  opts.num_threads = 4;
  opts.answer_cache_bytes = 1 << 20;
  QueryService service(&manager, program, opts);
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  constexpr size_t kClients = 8;
  QueryRequest req = Req("sg", source);
  std::vector<QueryFuture> futures;
  futures.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) futures.push_back(service.Submit(req));

  std::vector<QueryResponse> responses;
  for (QueryFuture& f : futures) responses.push_back(f.Take());

  const uint64_t expect_hash = AnswerCache::HashTuples(responses[0].tuples);
  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.message();
    EXPECT_EQ(AnswerCache::HashTuples(r.tuples), expect_hash);
    EXPECT_EQ(r.tuples, responses[0].tuples);
  }
  CacheSnapshot snap = service.answer_cache()->Snapshot();
  // Every non-leader either joined the flight (collapsed) or, had the
  // leader already finished, hit the freshly inserted entry.
  EXPECT_GE(snap.collapsed + snap.hits, 1u);
  EXPECT_GE(snap.collapsed, 1u);
  EXPECT_LE(snap.inserts, 2u);  // the leader (+ at most a rare straggler)
}

// The cache must be invisible in the results: a cache-on service and a
// cache-off service fed the same publishes and the same (repeat-heavy)
// batches answer byte-identically at every epoch.
TEST(AnswerCacheTest, CacheOnAndOffAnswerIdenticallyAcrossPublishCycles) {
  auto off_genesis = TwoChainGenesis(8);
  auto on_genesis = TwoChainGenesis(8);
  Program off_prog =
      ParseProgram(kTwoClosureProgram, off_genesis->symbols()).take();
  Program on_prog =
      ParseProgram(kTwoClosureProgram, on_genesis->symbols()).take();
  SnapshotManager off_mgr(std::move(off_genesis));
  SnapshotManager on_mgr(std::move(on_genesis));

  QueryService::Options off_opts;
  off_opts.num_threads = 2;
  QueryService off(&off_mgr, off_prog, off_opts);
  QueryService::Options on_opts;
  on_opts.num_threads = 2;
  on_opts.answer_cache_bytes = 1 << 20;
  QueryService on(&on_mgr, on_prog, on_opts);
  ASSERT_TRUE(off.status().ok());
  ASSERT_TRUE(on.status().ok());

  // Repeats inside the batch (in-batch dedup) and across epochs (cache
  // hits and selective invalidation both get exercised).
  const std::vector<QueryRequest> batch = {
      Req("pup", "u1"), Req("pdown", "d1"), Req("pup", "u1"),
      Req("pup", "u3"), Req("pdown", "d1"),
  };
  // Cycle deltas alternate which closure they touch; the last one is a
  // retraction so the tombstone path is covered too.
  const auto apply_delta = [](SnapshotManager& m, size_t cycle) {
    switch (cycle) {
      case 1: m.AddFact("up", {"u8", "u9"}); break;
      case 2: m.AddFact("down", {"d8", "d9"}); break;
      case 3: m.DeleteFact("up", {"u2", "u3"}); break;
    }
  };

  for (size_t cycle = 0; cycle <= 3; ++cycle) {
    if (cycle > 0) {
      apply_delta(off_mgr, cycle);
      apply_delta(on_mgr, cycle);
      ASSERT_TRUE(off_mgr.Publish().status.ok());
      ASSERT_TRUE(on_mgr.Publish().status.ok());
    }
    std::vector<QueryResponse> a = off.EvalBatch(batch, nullptr);
    std::vector<QueryResponse> b = on.EvalBatch(batch, nullptr);
    ASSERT_EQ(a.size(), batch.size());
    ASSERT_EQ(b.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(a[i].status.ok()) << a[i].status.message();
      ASSERT_TRUE(b[i].status.ok()) << b[i].status.message();
      EXPECT_EQ(a[i].epoch, cycle) << i;
      EXPECT_EQ(b[i].epoch, cycle) << i;
      // Identical construction order interns identical symbol ids, so the
      // tuples must match bit-for-bit, not just up to renaming.
      EXPECT_EQ(a[i].tuples, b[i].tuples) << "query " << i << " cycle "
                                          << cycle;
      EXPECT_EQ(AnswerCache::HashTuples(a[i].tuples),
                AnswerCache::HashTuples(b[i].tuples));
    }
  }
  CacheSnapshot snap = on.answer_cache()->Snapshot();
  EXPECT_GT(snap.hits, 0u);           // repeats across epochs were served
  EXPECT_GT(snap.invalidations, 0u);  // and the deltas retired stale entries
}

}  // namespace
}  // namespace binchain
