// Index semantics of the arena-backed Relation: lazy catch-up after
// post-index inserts, empty-mask full scans, all-columns point lookups,
// duplicate rejection, view/arena consistency, and repeated-variable
// literals flowing through EnumerateMatches.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "datalog/parser.h"
#include "eval/join.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace binchain {
namespace {

std::vector<Tuple> Matches(const Relation& r, uint32_t mask,
                           const Tuple& key) {
  std::vector<Tuple> got;
  r.ForEachMatch(mask, key, [&](TupleRef t) { got.push_back(Tuple(t)); });
  return got;
}

TEST(RelationIndexTest, LazyCatchUpAfterPostIndexInserts) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({2, 20});
  // Build the column-0 index, then append behind its back — twice, with a
  // probe in between, so indexed_upto advances incrementally.
  EXPECT_EQ(Matches(r, 0b01, {1, 0}).size(), 1u);
  r.Insert({1, 11});
  EXPECT_EQ(Matches(r, 0b01, {1, 0}).size(), 2u);
  r.Insert({1, 12});
  r.Insert({3, 30});
  auto got = Matches(r, 0b01, {1, 0});
  ASSERT_EQ(got.size(), 3u);
  // Chains enumerate in insertion order.
  EXPECT_EQ(got[0], (Tuple{1, 10}));
  EXPECT_EQ(got[1], (Tuple{1, 11}));
  EXPECT_EQ(got[2], (Tuple{1, 12}));
}

TEST(RelationIndexTest, CatchUpAcrossManyInsertsForcesTableGrowth) {
  Relation r(2);
  r.Insert({0, 0});
  EXPECT_EQ(Matches(r, 0b01, {0, 0}).size(), 1u);  // index exists, 1 key
  // Push the index through several open-addressing growth cycles during one
  // catch-up batch.
  for (SymbolId i = 1; i < 500; ++i) r.Insert({i, i + 1000});
  for (SymbolId i = 0; i < 500; ++i) {
    ASSERT_EQ(Matches(r, 0b01, {i, 0}).size(), 1u) << i;
  }
}

TEST(RelationIndexTest, EmptyMaskIsFullScan) {
  Relation r(3);
  r.Insert({1, 2, 3});
  r.Insert({4, 5, 6});
  r.Insert({7, 8, 9});
  auto got = Matches(r, 0, {0, 0, 0});
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (Tuple{1, 2, 3}));  // dense row order
  EXPECT_EQ(got[2], (Tuple{7, 8, 9}));
}

TEST(RelationIndexTest, AllColumnsMaskIsPointLookup) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 11});
  r.Insert({2, 10});
  auto got = Matches(r, 0b11, {1, 11});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Tuple{1, 11}));
  EXPECT_TRUE(Matches(r, 0b11, {2, 11}).empty());
}

TEST(RelationIndexTest, DuplicateInsertRejectedAndNotDoubleIndexed) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({5, 6}));
  EXPECT_FALSE(r.Insert({5, 6}));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(Matches(r, 0b01, {5, 0}).size(), 1u);
  EXPECT_FALSE(r.Insert({5, 6}));  // also rejected after the index exists
  EXPECT_EQ(Matches(r, 0b01, {5, 0}).size(), 1u);
}

TEST(RelationIndexTest, FetchCountsMatchDeliveredTuples) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 11});
  r.Insert({2, 20});
  r.ResetFetchCount();
  Matches(r, 0b01, {1, 0});  // 2 tuples
  Matches(r, 0, {0, 0});     // 3 tuples (full scan)
  Matches(r, 0b01, {9, 0});  // miss: 0 tuples
  EXPECT_EQ(r.fetch_count(), 5u);
}

TEST(RelationIndexTest, FreezeCompletesLazyCatchUpAndStopsCounting) {
  Relation r(2);
  r.Insert({1, 10});
  EXPECT_EQ(Matches(r, 0b01, {1, 0}).size(), 1u);  // index exists, stale soon
  r.Insert({1, 11});
  r.Insert({2, 20});
  r.ResetFetchCount();
  uint64_t tls_before = Relation::ThreadFetchCount();
  r.Freeze();
  EXPECT_TRUE(r.frozen());
  // Catch-up happened eagerly at freeze time; probes see every row.
  auto got = Matches(r, 0b01, {1, 0});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Tuple{1, 10}));
  EXPECT_EQ(got[1], (Tuple{1, 11}));
  // Binary relations get both single-column masks pre-built by Freeze, so
  // a mask never probed before the freeze is still served by an index.
  EXPECT_EQ(Matches(r, 0b10, {0, 20}).size(), 1u);
  EXPECT_EQ(Matches(r, 0b11, {2, 20}).size(), 1u);
  EXPECT_EQ(Matches(r, 0, {0, 0}).size(), 3u);
  EXPECT_TRUE(r.Contains(Tuple{2, 20}));
  // Frozen fetches land in the thread-local counter, not the relation.
  EXPECT_EQ(r.fetch_count(), 0u);
  EXPECT_EQ(Relation::ThreadFetchCount() - tls_before, 7u);
}

TEST(RelationIndexTest, FrozenWideRelationFallsBackToScanForNewMasks) {
  // Arity above kEagerFreezeArity: only masks indexed before the freeze
  // have indexes; fresh masks are answered by a read-only filtered scan.
  Relation r(Relation::kEagerFreezeArity + 1);
  r.Insert({1, 2, 3, 4, 5});
  r.Insert({1, 9, 9, 9, 6});
  r.Insert({7, 2, 3, 4, 5});
  EXPECT_EQ(Matches(r, 0b00001, {1, 0, 0, 0, 0}).size(), 2u);  // pre-freeze
  r.Freeze();
  EXPECT_EQ(Matches(r, 0b00001, {1, 0, 0, 0, 0}).size(), 2u);  // via index
  auto got = Matches(r, 0b00110, {0, 2, 3, 0, 0});  // fresh mask: scan
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Tuple{1, 2, 3, 4, 5}));
  EXPECT_EQ(got[1], (Tuple{7, 2, 3, 4, 5}));
}

TEST(RelationIndexTest, FrozenRelationRejectsInserts) {
  Relation r(2);
  r.Insert({1, 2});
  r.Freeze();
  EXPECT_DEATH(r.Insert(Tuple{3, 4}), "frozen");
}

TEST(RelationIndexTest, DatabaseFreezePropagates) {
  Database db;
  db.AddFact("e", {"a", "b"});
  db.Freeze();
  EXPECT_TRUE(db.frozen());
  EXPECT_TRUE(db.symbols().frozen());
  EXPECT_TRUE(db.Find("e")->frozen());
  db.Freeze();  // idempotent
  // Existing spellings still intern (pure lookup); fresh ones abort.
  EXPECT_EQ(db.symbols().Intern("a"), *db.symbols().Find("a"));
  EXPECT_DEATH(db.symbols().Intern("brand_new_symbol"), "frozen");
  EXPECT_DEATH(db.GetOrCreate("fresh_rel", 2), "frozen");
}

TEST(RelationIndexTest, TupleViewsStayValidAcrossArenaGrowth) {
  Relation r(2);
  r.Insert({1, 2});
  Tuple copy(r.tuple(0));  // materialized before growth
  for (SymbolId i = 0; i < 1000; ++i) r.Insert({i + 10, i});
  EXPECT_EQ(Tuple(r.tuple(0)), copy);  // row 0 content is stable
  EXPECT_TRUE(r.Contains(copy));
}

TEST(RelationIndexTest, SelfInsertFromOwnArenaIsSafe) {
  // Inserting a TupleRef that views the relation's own arena must survive
  // the arena reallocation the insert may trigger.
  Relation r(2);
  for (SymbolId i = 0; i < 100; ++i) r.Insert({i, i + 1});
  size_t before = r.size();
  TupleRef row0 = r.tuple(0);
  EXPECT_FALSE(r.Insert(row0));  // duplicate of itself
  std::vector<Tuple> shifted;
  for (size_t i = 0; i < before; ++i) {
    TupleRef t = r.tuple(i);
    shifted.push_back(Tuple{t[1], t[0]});
  }
  for (const Tuple& t : shifted) r.Insert(t);
  EXPECT_GT(r.size(), before);
}

TEST(RelationIndexTest, ZeroArityRelationHoldsOneRow) {
  Relation r(0);
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));
  EXPECT_EQ(r.size(), 1u);
  size_t count = 0;
  r.ForEachMatch(0, Tuple{}, [&](TupleRef) { ++count; });
  EXPECT_EQ(count, 1u);
}

class EnumerateTest : public ::testing::Test {
 protected:
  RelationResolver Resolver() {
    return [this](SymbolId pred) { return db_.FindById(pred); };
  }

  std::vector<Literal> Body(const std::string& rule_text) {
    auto p = ParseProgram(rule_text, db_.symbols());
    return p.value().rules[0].body;
  }

  Database db_;
};

TEST_F(EnumerateTest, RepeatedVariableWithinLiteralFiltersMatches) {
  db_.AddFact("e", {"a", "a"});
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "b"});
  std::vector<Literal> body = Body("h(X) :- e(X, X).");
  Binding binding;
  std::set<std::string> xs;
  Status s = EnumerateMatches(Resolver(), db_.symbols(), body, binding,
                              [&](const Binding& b) {
                                xs.insert(db_.symbols().Name(
                                    b.at(*db_.symbols().Find("X"))));
                              });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(xs, (std::set<std::string>{"a", "b"}));
}

TEST_F(EnumerateTest, RepeatedVariableAcrossLiteralsJoins) {
  db_.AddFact("e", {"a", "b"});
  db_.AddFact("e", {"b", "c"});
  db_.AddFact("e", {"b", "d"});
  std::vector<Literal> body = Body("h(X, Z) :- e(X, Y), e(Y, Z).");
  Binding binding;
  size_t count = 0;
  Status s = EnumerateMatches(Resolver(), db_.symbols(), body, binding,
                              [&](const Binding&) { ++count; });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 2u);  // a->b->c and a->b->d
}

TEST(RelationIndexTest, WideMaskScanCounterOnFrozenFallback) {
  // Arity above kEagerFreezeArity: Freeze() only catches up indexes that
  // already exist, so a mask first probed after the freeze takes the
  // read-only scan path — and must say so in the thread-local counter.
  Relation r(5);
  for (SymbolId i = 0; i < 20; ++i) {
    r.Insert(Tuple{i, i + 1, i + 2, i % 3, i % 2});
  }
  // Probe column 0 before the freeze: its index exists and survives.
  EXPECT_EQ(Matches(r, 0b00001, Tuple{3, 0, 0, 0, 0}).size(), 1u);
  r.Freeze();

  uint64_t before = Relation::ThreadWideScanCount();
  // Indexed mask: served by the frozen index, no fallback scan.
  EXPECT_EQ(Matches(r, 0b00001, Tuple{4, 0, 0, 0, 0}).size(), 1u);
  EXPECT_EQ(Relation::ThreadWideScanCount(), before);
  // Never-indexed mask: correct answers via the scan path, counted once.
  auto got = Matches(r, 0b01000, Tuple{0, 0, 0, 1, 0});
  EXPECT_EQ(got.size(), 7u);  // i % 3 == 1 for 20 rows
  EXPECT_EQ(Relation::ThreadWideScanCount(), before + 1);
  // Full scans (mask 0) are not "wide scans".
  EXPECT_EQ(Matches(r, 0, Tuple{0, 0, 0, 0, 0}).size(), 20u);
  EXPECT_EQ(Relation::ThreadWideScanCount(), before + 1);
}

TEST(RelationIndexTest, FlattenedWideRelationKeepsChainMasks) {
  // Flatten() must carry the chain's mask knowledge forward: a wide
  // relation (arity > kEagerFreezeArity) whose mask was indexed anywhere in
  // the chain must not degrade to wide fallback scans after it is
  // flattened and re-frozen. (The chained path is covered above; this
  // pins the flatten path, which used to drop all indexes.)
  auto base = std::make_shared<Relation>(5);
  for (SymbolId i = 0; i < 12; ++i) {
    base->Insert(Tuple{i, i + 1, i + 2, i % 3, i % 2});
  }
  // Index column 0 on the base before it freezes.
  EXPECT_EQ(Matches(*base, 0b00001, Tuple{3, 0, 0, 0, 0}).size(), 1u);
  base->Freeze();
  auto delta = Relation::Extend(base);
  delta->Insert(Tuple{100, 1, 2, 0, 0});
  // Index column 1 on the delta layer only.
  EXPECT_EQ(Matches(*delta, 0b00010, Tuple{0, 1, 0, 0, 0}).size(), 2u);

  auto flat = delta->Flatten();
  flat->Freeze();
  ASSERT_EQ(flat->size(), 13u);
  uint64_t before = Relation::ThreadWideScanCount();
  // Masks indexed by any chain layer are served by rebuilt indexes.
  EXPECT_EQ(Matches(*flat, 0b00001, Tuple{3, 0, 0, 0, 0}).size(), 1u);
  EXPECT_EQ(Matches(*flat, 0b00001, Tuple{100, 0, 0, 0, 0}).size(), 1u);
  EXPECT_EQ(Matches(*flat, 0b00010, Tuple{0, 1, 0, 0, 0}).size(), 2u);
  EXPECT_EQ(Relation::ThreadWideScanCount(), before);
  // A mask no layer ever indexed still takes (and counts) the scan path.
  EXPECT_EQ(Matches(*flat, 0b01000, Tuple{0, 0, 0, 1, 0}).size(), 4u);
  EXPECT_EQ(Relation::ThreadWideScanCount(), before + 1);
}

TEST(RelationIndexTest, SmallArityNeverWideScans) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({2, 20});
  r.Freeze();  // arity <= kEagerFreezeArity: every mask pre-built
  uint64_t before = Relation::ThreadWideScanCount();
  for (uint32_t mask = 1; mask < 4; ++mask) {
    Matches(r, mask, Tuple{2, 20});
  }
  EXPECT_EQ(Relation::ThreadWideScanCount(), before);
}

TEST(RelationIndexTest, ThawInsertRefreezeCatchesUpIndexes) {
  Relation r(2);
  for (SymbolId i = 0; i < 8; ++i) r.Insert(Tuple{i, i * 10});
  r.Freeze();
  EXPECT_EQ(Matches(r, 0b01, Tuple{5, 0}).size(), 1u);

  r.Thaw();
  EXPECT_FALSE(r.frozen());
  EXPECT_TRUE(r.Insert(Tuple{100, 1000}));
  EXPECT_FALSE(r.Insert(Tuple{5, 50}));  // still deduplicated
  r.Freeze();

  // Existing indexes absorbed the appended row; point lookups see it.
  EXPECT_EQ(Matches(r, 0b01, Tuple{100, 0}).size(), 1u);
  EXPECT_EQ(Matches(r, 0b10, Tuple{0, 1000}).size(), 1u);
  EXPECT_EQ(Matches(r, 0b11, Tuple{100, 1000}).size(), 1u);
  EXPECT_EQ(r.size(), 9u);
}

TEST(RelationIndexTest, ExtendLayersAnswerLikeOneRelation) {
  auto base = std::make_shared<Relation>(2);
  for (SymbolId i = 0; i < 6; ++i) base->Insert(Tuple{i, i + 100});
  base->Freeze();

  auto delta = Relation::Extend(base);
  EXPECT_EQ(delta->base(), base);
  EXPECT_EQ(delta->size(), 6u);
  EXPECT_FALSE(delta->Insert(Tuple{2, 102}));  // dedup sees through layers
  EXPECT_TRUE(delta->Insert(Tuple{50, 150}));
  EXPECT_TRUE(delta->Contains(Tuple{2, 102}));
  EXPECT_TRUE(delta->Contains(Tuple{50, 150}));
  delta->Freeze();

  EXPECT_EQ(delta->size(), 7u);
  EXPECT_EQ(delta->local_size(), 1u);
  // Probes merge base matches (first) with local matches.
  EXPECT_EQ(Matches(*delta, 0b01, Tuple{2, 0}).size(), 1u);
  EXPECT_EQ(Matches(*delta, 0b01, Tuple{50, 0}).size(), 1u);
  // Global row ids cover the chain in insertion order.
  EXPECT_EQ(delta->tuple(0), TupleRef(Tuple{0, 100}));
  EXPECT_EQ(delta->tuple(6), TupleRef(Tuple{50, 150}));
  // Segmented iteration covers every layer.
  size_t rows = 0;
  for (TupleRef t : delta->tuples()) {
    (void)t;
    ++rows;
  }
  EXPECT_EQ(rows, 7u);
  // The base is untouched.
  EXPECT_EQ(base->size(), 6u);
  EXPECT_FALSE(base->Contains(Tuple{50, 150}));

  // Flatten preserves contents and global row order.
  auto flat = delta->Flatten();
  EXPECT_EQ(flat->size(), 7u);
  EXPECT_EQ(flat->chain_depth(), 0u);
  for (size_t i = 0; i < flat->size(); ++i) {
    EXPECT_EQ(Tuple(flat->tuple(i)), Tuple(delta->tuple(i))) << i;
  }
}

TEST(RelationIndexTest, DeleteThenReinsertRoundTrips) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(Tuple{1, 10}));
  EXPECT_TRUE(r.Insert(Tuple{2, 20}));
  const uint64_t muts0 = r.dead_mutations();

  EXPECT_TRUE(r.Delete(Tuple{1, 10}));
  EXPECT_FALSE(r.Contains(Tuple{1, 10}));
  EXPECT_TRUE(r.Contains(Tuple{2, 20}));
  EXPECT_EQ(r.size(), 2u);  // physical: the tombstoned row is still stored
  EXPECT_EQ(r.live_size(), 1u);
  EXPECT_EQ(r.dead_count(), 1u);
  EXPECT_EQ(r.dead_mutations(), muts0 + 1);

  // Deleting an absent or already-dead fact is a detectable no-op.
  EXPECT_FALSE(r.Delete(Tuple{1, 10}));
  EXPECT_FALSE(r.Delete(Tuple{9, 90}));
  EXPECT_EQ(r.dead_mutations(), muts0 + 1);

  // Reinsert resurrects the stored row: no duplicate, same row id, and
  // every read path sees it again.
  EXPECT_TRUE(r.Insert(Tuple{1, 10}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.live_size(), 2u);
  EXPECT_EQ(r.dead_count(), 0u);
  EXPECT_TRUE(r.Contains(Tuple{1, 10}));
  EXPECT_EQ(Matches(r, 0b01, {1, 0}).size(), 1u);
  // The resurrection is a dead-set edit too: equal cardinality must never
  // masquerade as an unchanged set.
  EXPECT_EQ(r.dead_mutations(), muts0 + 2);
  // A second insert of the live fact is an ordinary duplicate.
  EXPECT_FALSE(r.Insert(Tuple{1, 10}));
}

TEST(RelationIndexTest, TombstonesFilterEveryReadPathAcrossChain) {
  // Mixed base + delta + tombstone chain: deletes land in the top layer's
  // cumulative dead set and must filter Contains, indexed probes, full
  // scans, and RowRange iteration — for base rows and local rows alike.
  auto base = std::make_shared<Relation>(2);
  for (SymbolId i = 0; i < 4; ++i) base->Insert(Tuple{i, i + 100});
  base->Freeze();

  auto delta = Relation::Extend(base);
  EXPECT_TRUE(delta->Insert(Tuple{50, 150}));
  EXPECT_TRUE(delta->Insert(Tuple{51, 151}));
  EXPECT_TRUE(delta->Delete(Tuple{1, 101}));   // base row
  EXPECT_TRUE(delta->Delete(Tuple{51, 151}));  // local row
  delta->Freeze();

  EXPECT_EQ(delta->size(), 6u);
  EXPECT_EQ(delta->live_size(), 4u);
  EXPECT_EQ(delta->dead_count(), 2u);
  EXPECT_FALSE(delta->Contains(Tuple{1, 101}));
  EXPECT_FALSE(delta->Contains(Tuple{51, 151}));
  EXPECT_TRUE(delta->Contains(Tuple{0, 100}));
  EXPECT_TRUE(delta->Contains(Tuple{50, 150}));

  // Indexed probe and full scan both skip dead rows.
  EXPECT_TRUE(Matches(*delta, 0b01, {1, 0}).empty());
  EXPECT_TRUE(Matches(*delta, 0b01, {51, 0}).empty());
  EXPECT_EQ(Matches(*delta, 0b01, {50, 0}).size(), 1u);
  std::set<Tuple> scanned;
  for (const Tuple& t : Matches(*delta, 0, {0, 0})) scanned.insert(t);
  std::set<Tuple> expected = {{0, 100}, {2, 102}, {3, 103}, {50, 150}};
  EXPECT_EQ(scanned, expected);

  // RowRange iteration filters at emission and sizes by live rows.
  EXPECT_EQ(delta->tuples().size(), 4u);
  std::set<Tuple> ranged;
  for (TupleRef t : delta->tuples()) ranged.insert(Tuple(t));
  EXPECT_EQ(ranged, expected);

  // RowDead exposes the raw row state the memo builders filter by.
  EXPECT_TRUE(delta->RowDead(1));
  EXPECT_TRUE(delta->RowDead(5));
  EXPECT_FALSE(delta->RowDead(0));
  EXPECT_FALSE(delta->RowDead(4));

  // The frozen base never sees the delta's tombstones.
  EXPECT_TRUE(base->Contains(Tuple{1, 101}));
  EXPECT_EQ(base->dead_count(), 0u);
}

TEST(RelationIndexTest, FlattenCompactionDropsDeadRows) {
  auto base = std::make_shared<Relation>(2);
  for (SymbolId i = 0; i < 5; ++i) base->Insert(Tuple{i, i + 100});
  base->Freeze();

  auto delta = Relation::Extend(base);
  EXPECT_TRUE(delta->Insert(Tuple{60, 160}));
  EXPECT_TRUE(delta->Delete(Tuple{0, 100}));
  EXPECT_TRUE(delta->Delete(Tuple{3, 103}));
  delta->Freeze();
  ASSERT_EQ(delta->live_size(), 4u);

  auto flat = delta->Flatten();
  // Dead rows are physically gone: the compacted relation is standalone,
  // its physical size IS the live size, and the dead set is empty.
  EXPECT_EQ(flat->chain_depth(), 0u);
  EXPECT_EQ(flat->size(), 4u);
  EXPECT_EQ(flat->live_size(), 4u);
  EXPECT_EQ(flat->dead_count(), 0u);
  std::set<Tuple> flat_rows;
  for (TupleRef t : flat->tuples()) flat_rows.insert(Tuple(t));
  std::set<Tuple> expected = {{1, 101}, {2, 102}, {4, 104}, {60, 160}};
  EXPECT_EQ(flat_rows, expected);
  EXPECT_FALSE(flat->Contains(Tuple{0, 100}));
  EXPECT_FALSE(flat->Contains(Tuple{3, 103}));
  // A dropped row's fact can be re-added as a brand-new row.
  flat->Freeze();
  auto next = Relation::Extend(flat);
  EXPECT_TRUE(next->Insert(Tuple{0, 100}));
  EXPECT_EQ(next->live_size(), 5u);
}

TEST(RelationIndexTest, DeadMutationsSeesThroughResurrectDeletePairs) {
  // A resurrect + delete pair keeps dead_count() constant while changing
  // the dead set's membership; dead_mutations() is the monotone counter
  // that tells the two apart (the guard behind memo chain-extension and
  // empty-delta pruning).
  auto base = std::make_shared<Relation>(2);
  base->Insert(Tuple{1, 10});
  base->Insert(Tuple{2, 20});
  base->Freeze();

  auto mid = Relation::Extend(base);
  EXPECT_TRUE(mid->Delete(Tuple{1, 10}));
  mid->Freeze();
  ASSERT_EQ(mid->dead_count(), 1u);

  auto top = Relation::Extend(mid);
  EXPECT_TRUE(top->Insert(Tuple{1, 10}));  // resurrect row 0
  EXPECT_TRUE(top->Delete(Tuple{2, 20}));  // kill row 1
  top->Freeze();

  EXPECT_EQ(top->dead_count(), mid->dead_count());  // cardinality agrees...
  EXPECT_NE(top->dead_mutations(), mid->dead_mutations());  // ...the set moved
  EXPECT_TRUE(mid->RowDead(0));
  EXPECT_FALSE(top->RowDead(0));
  EXPECT_TRUE(top->RowDead(1));
  // An untouched extension inherits the counter exactly.
  auto quiet = Relation::Extend(top);
  EXPECT_EQ(quiet->dead_mutations(), top->dead_mutations());
}

TEST_F(EnumerateTest, RepeatedVariableAgainstPartialBinding) {
  // With X pre-bound, e(X, X) must only match the diagonal tuple for that
  // binding (exercises the masked probe with a repeated variable).
  db_.AddFact("e", {"a", "a"});
  db_.AddFact("e", {"a", "b"});
  std::vector<Literal> body = Body("h(X) :- e(X, X).");
  Binding binding;
  binding.emplace(*db_.symbols().Find("X"), *db_.symbols().Find("a"));
  size_t count = 0;
  Status s = EnumerateMatches(Resolver(), db_.symbols(), body, binding,
                              [&](const Binding&) { ++count; });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace binchain
