#include <gtest/gtest.h>

#include <unordered_set>

#include "datalog/parser.h"
#include "equations/equations.h"
#include "equations/lemma1.h"

namespace binchain {
namespace {

/// The worked example of Lemma 1 (Section 3 of the paper).
const char* kPaperExample =
    "p1(X, Z) :- b(X, Y), p2(Y, Z).\n"
    "p1(X, Z) :- q1(X, Y), p3(Y, Z).\n"
    "p2(X, Z) :- c(X, Y), p1(Y, Z).\n"
    "p2(X, Z) :- d(X, Y), p3(Y, Z).\n"
    "p3(X, Y) :- a(X, Y).\n"
    "p3(X, Z) :- e(X, Y), p2(Y, Z).\n"
    "q1(X, Z) :- a(X, Y), q2(Y, Z).\n"
    "q2(X, Y) :- r2(X, Y).\n"
    "q2(X, Z) :- q1(X, Y), r1(Y, Z).\n"
    "r1(X, Y) :- b(X, Y).\n"
    "r1(X, Y) :- r2(X, Y).\n"
    "r2(X, Z) :- r1(X, Y), c(Y, Z).\n";

const char* kSg =
    "sg(X, Y) :- flat(X, Y).\n"
    "sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).\n";

Program MustParse(const std::string& text, SymbolTable& symbols) {
  auto r = ParseProgram(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

TEST(InitialEquationsTest, Step1BuildsOneAlternativePerRule) {
  SymbolTable symbols;
  Program p = MustParse(kPaperExample, symbols);
  auto eqs = BuildInitialEquations(p, symbols);
  ASSERT_TRUE(eqs.ok()) << eqs.status().message();
  const EquationSystem& sys = eqs.value();
  EXPECT_EQ(RexToString(sys.Rhs(*symbols.Find("p1")), symbols), "b.p2 U q1.p3");
  EXPECT_EQ(RexToString(sys.Rhs(*symbols.Find("p3")), symbols), "a U e.p2");
  EXPECT_EQ(RexToString(sys.Rhs(*symbols.Find("r2")), symbols), "r1.c");
  EXPECT_EQ(sys.preds().size(), 7u);
}

TEST(InitialEquationsTest, ReflexiveRuleBecomesId) {
  SymbolTable symbols;
  Program p = MustParse("star(X, X).\nstar(X, Z) :- star(X, Y), e(Y, Z).\n",
                        symbols);
  auto eqs = BuildInitialEquations(p, symbols);
  ASSERT_TRUE(eqs.ok()) << eqs.status().message();
  EXPECT_EQ(RexToString(eqs.value().Rhs(*symbols.Find("star")), symbols),
            "id U star.e");
}

TEST(InitialEquationsTest, RejectsNonChainPrograms) {
  SymbolTable symbols;
  Program p = MustParse("p(X, Y) :- b(Y, X).\n", symbols);
  EXPECT_FALSE(BuildInitialEquations(p, symbols).ok());

  SymbolTable symbols2;
  Program nonlinear =
      MustParse("t(X, Z) :- t(X, Y), t(Y, Z).\nt(X, Y) :- e(X, Y).\n",
                symbols2);
  EXPECT_FALSE(BuildInitialEquations(nonlinear, symbols2).ok());
}

TEST(Lemma1Test, RegularProgramGetsBasePredicateOnlyEquations) {
  // Statement (5): regular program => only base predicates on the right.
  SymbolTable symbols;
  Program p = MustParse(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Z) :- e(X, Y), path(Y, Z).\n",
      symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const EquationSystem& sys = r.value().final_system;
  EXPECT_EQ(RexToString(sys.Rhs(*symbols.Find("path")), symbols), "e*.e");
}

TEST(Lemma1Test, LeftLinearClosure) {
  SymbolTable symbols;
  Program p = MustParse(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Z) :- path(X, Y), e(Y, Z).\n",
      symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(RexToString(r.value().final_system.Rhs(*symbols.Find("path")),
                        symbols),
            "e.e*");
}

TEST(Lemma1Test, SameGenerationStaysInNormalForm) {
  SymbolTable symbols;
  Program p = MustParse(kSg, symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok());
  const EquationSystem& sys = r.value().final_system;
  SymbolId sg = *symbols.Find("sg");
  EXPECT_EQ(RexToString(sys.Rhs(sg), symbols), "flat U up.sg.down");
  LinearNormalForm nf;
  ASSERT_TRUE(MatchLinearNormalForm(sys, sg, &nf));
  EXPECT_EQ(RexToString(nf.e0, symbols), "flat");
  EXPECT_EQ(RexToString(nf.e1, symbols), "up");
  EXPECT_EQ(RexToString(nf.e2, symbols), "down");
}

TEST(Lemma1Test, PaperExampleRegularPredicates) {
  // The paper's trace: r1 = b.c*, r2 = b.c*.c, q1 = a.q2,
  // q2 = b.c*.c U a.q2.b.c*.
  SymbolTable symbols;
  Program p = MustParse(kPaperExample, symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const EquationSystem& sys = r.value().final_system;
  EXPECT_EQ(RexToString(sys.Rhs(*symbols.Find("r1")), symbols), "b.c*");
  EXPECT_EQ(RexToString(sys.Rhs(*symbols.Find("r2")), symbols), "b.c*.c");
  EXPECT_EQ(RexToString(sys.Rhs(*symbols.Find("q1")), symbols), "a.q2");
  EXPECT_EQ(RexToString(sys.Rhs(*symbols.Find("q2")), symbols),
            "b.c*.c U a.q2.b.c*");
}

TEST(Lemma1Test, PaperExampleStatements) {
  SymbolTable symbols;
  Program p = MustParse(kPaperExample, symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok());
  const EquationSystem& sys = r.value().final_system;

  // Statement (1): one equation per derived predicate.
  EXPECT_EQ(sys.preds().size(), 7u);

  auto derived_in = [&](const char* pred) {
    std::unordered_set<SymbolId> mentioned;
    CollectPreds(sys.Rhs(*symbols.Find(pred)), mentioned);
    std::unordered_set<std::string> out;
    for (SymbolId q : mentioned) {
      if (sys.Has(q)) out.insert(symbols.Name(q));
    }
    return out;
  };

  // Statement (3): no regular derived predicates (p1..p3, r1, r2, q1) remain
  // in any right-hand side; only the nonregular q2 and the non-eliminable q1
  // may appear.
  using Set = std::unordered_set<std::string>;
  EXPECT_EQ(derived_in("p1"), (Set{"q1"}));
  EXPECT_EQ(derived_in("p2"), (Set{"q1"}));
  EXPECT_EQ(derived_in("p3"), (Set{"q1"}));
  EXPECT_EQ(derived_in("q1"), (Set{"q2"}));
  EXPECT_EQ(derived_in("q2"), (Set{"q2"}));
  EXPECT_EQ(derived_in("r1"), (Set{}));
  EXPECT_EQ(derived_in("r2"), (Set{}));

  // Statement (6): at most one occurrence of a predicate mutually recursive
  // to the left-hand side (here: q2 occurs once in its own equation).
  EXPECT_EQ(CountPred(sys.Rhs(*symbols.Find("q2")), *symbols.Find("q2")), 1u);
}

TEST(MatchLinearNormalFormTest, RejectsNonMatchingShapes) {
  SymbolTable symbols;
  Program p = MustParse(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Z) :- e(X, Y), path(Y, Z).\n",
      symbols);
  auto init = BuildInitialEquations(p, symbols);
  ASSERT_TRUE(init.ok());
  // path = e U e.path: matches with empty e2.
  LinearNormalForm nf;
  ASSERT_TRUE(MatchLinearNormalForm(init.value(), *symbols.Find("path"), &nf));
  EXPECT_TRUE(nf.e2->IsId());

  // Two recursive alternatives do not match.
  SymbolTable s2;
  Program p2 = MustParse(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Z) :- a(X, Y), t(Y, Z).\n"
      "t(X, Z) :- b(X, Y), t(Y, Z).\n",
      s2);
  auto init2 = BuildInitialEquations(p2, s2);
  ASSERT_TRUE(init2.ok());
  EXPECT_FALSE(MatchLinearNormalForm(init2.value(), *s2.Find("t"), nullptr));
}

TEST(InvertSystemTest, InvertsSgEquation) {
  SymbolTable symbols;
  Program p = MustParse(kSg, symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok());
  std::unordered_map<SymbolId, SymbolId> inverse_of;
  EquationSystem inv =
      InvertSystem(r.value().final_system, symbols, inverse_of);
  SymbolId sg_inv = inverse_of.at(*symbols.Find("sg"));
  EXPECT_EQ(RexToString(inv.Rhs(sg_inv), symbols),
            "flat^-1 U down^-1.sg~inv.up^-1");
}

TEST(Lemma1Test, TerminatesOnMutualRegularPair) {
  SymbolTable symbols;
  Program p = MustParse(
      "even(X, Y) :- e(X, Y).\n"
      "even(X, Z) :- e(X, Y), odd(Y, Z).\n"
      "odd(X, Z) :- e(X, Y), even(Y, Z).\n",
      symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const EquationSystem& sys = r.value().final_system;
  // Both predicates are right-linear (regular): their final equations must
  // contain only base predicates.
  for (const char* name : {"even", "odd"}) {
    std::unordered_set<SymbolId> mentioned;
    CollectPreds(sys.Rhs(*symbols.Find(name)), mentioned);
    for (SymbolId q : mentioned) {
      EXPECT_FALSE(sys.Has(q)) << "derived predicate left in " << name;
    }
  }
}

}  // namespace
}  // namespace binchain
