#include <gtest/gtest.h>

#include "rex/rex.h"

namespace binchain {
namespace {

class RexTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  SymbolId a_ = symbols_.Intern("a");
  SymbolId b_ = symbols_.Intern("b");
  SymbolId c_ = symbols_.Intern("c");
  RexPtr A_ = Rex::Pred(a_);
  RexPtr B_ = Rex::Pred(b_);
  RexPtr C_ = Rex::Pred(c_);

  std::string Str(const RexPtr& e) { return RexToString(e, symbols_); }
};

TEST_F(RexTest, UnionDropsEmptyAndFlattens) {
  RexPtr e = Rex::Union({A_, Rex::Empty(), Rex::Union2(B_, C_)});
  EXPECT_EQ(Str(e), "a U b U c");
}

TEST_F(RexTest, UnionDeduplicates) {
  RexPtr e = Rex::Union({A_, Rex::Pred(a_), B_});
  EXPECT_EQ(Str(e), "a U b");
}

TEST_F(RexTest, UnionOfNothingIsEmpty) {
  EXPECT_TRUE(Rex::Union({})->IsEmpty());
  EXPECT_TRUE(Rex::Union({Rex::Empty()})->IsEmpty());
}

TEST_F(RexTest, ConcatZeroAndUnitLaws) {
  EXPECT_TRUE(Rex::Concat({A_, Rex::Empty(), B_})->IsEmpty());
  EXPECT_EQ(Str(Rex::Concat({Rex::Id(), A_, Rex::Id()})), "a");
  EXPECT_TRUE(Rex::Concat({})->IsId());
}

TEST_F(RexTest, StarSimplifications) {
  EXPECT_TRUE(Rex::Star(Rex::Empty())->IsId());
  EXPECT_TRUE(Rex::Star(Rex::Id())->IsId());
  EXPECT_EQ(Str(Rex::Star(Rex::Star(A_))), "a*");
}

TEST_F(RexTest, PrintingUsesPrecedence) {
  RexPtr e = Rex::Concat2(B_, Rex::Star(Rex::Concat2(A_, C_)));
  EXPECT_EQ(Str(e), "b.(a.c)*");
  RexPtr u = Rex::Concat2(Rex::Union2(A_, B_), C_);
  EXPECT_EQ(Str(u), "(a U b).c");
}

TEST_F(RexTest, ContainsAndCount) {
  RexPtr e = Rex::Union2(Rex::Concat2(A_, B_), Rex::Star(A_));
  EXPECT_TRUE(ContainsPred(e, a_));
  EXPECT_TRUE(ContainsPred(e, b_));
  EXPECT_FALSE(ContainsPred(e, c_));
  EXPECT_EQ(CountPred(e, a_), 2u);
  EXPECT_EQ(LeafCount(e), 3u);
}

TEST_F(RexTest, SubstituteReplacesAllOccurrences) {
  RexPtr e = Rex::Union2(A_, Rex::Concat2(B_, A_));
  RexPtr s = SubstitutePred(e, a_, C_);
  EXPECT_EQ(Str(s), "c U b.c");
  EXPECT_FALSE(ContainsPred(s, a_));
}

TEST_F(RexTest, InvertReversesConcatAndFlipsLeaves) {
  auto flip = [](SymbolId p, bool inv) { return Rex::Pred(p, !inv); };
  RexPtr e = Rex::Concat({A_, B_, Rex::Star(C_)});
  RexPtr inv = Invert(e, flip);
  EXPECT_EQ(Str(inv), "c^-1*.b^-1.a^-1");
  // Inverting twice restores the original.
  EXPECT_EQ(Str(Invert(inv, flip)), Str(e));
}

TEST_F(RexTest, DistributeOnlyOverTargetedUnions) {
  std::unordered_set<SymbolId> targets{b_};
  RexPtr e = Rex::Concat2(A_, Rex::Union2(B_, C_));
  EXPECT_EQ(Str(DistributeOverUnion(e, targets)), "a.b U a.c");
  // A union without target predicates stays factored.
  std::unordered_set<SymbolId> none{symbols_.Intern("z")};
  EXPECT_EQ(Str(DistributeOverUnion(e, none)), "a.(b U c)");
}

TEST_F(RexTest, DistributeHandlesNestedConcats) {
  std::unordered_set<SymbolId> targets{b_};
  RexPtr e = Rex::Concat({A_, Rex::Union2(B_, C_), C_});
  EXPECT_EQ(Str(DistributeOverUnion(e, targets)), "a.b.c U a.c.c");
}

TEST_F(RexTest, StructuralEquality) {
  EXPECT_TRUE(RexEquals(Rex::Concat2(A_, B_), Rex::Concat2(A_, B_)));
  EXPECT_FALSE(RexEquals(Rex::Concat2(A_, B_), Rex::Concat2(B_, A_)));
  EXPECT_TRUE(RexEquals(Rex::Pred(a_, true), Rex::Pred(a_, true)));
  EXPECT_FALSE(RexEquals(Rex::Pred(a_, true), Rex::Pred(a_, false)));
}

}  // namespace
}  // namespace binchain
