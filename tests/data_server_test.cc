// Data plane: the rate limiter's token buckets, streamed answer chunks at
// the service layer (sink threading, chunk/trace accounting, cache
// replay), and the HTTP server end to end — chunked-vs-buffered payload
// identity, keep-alive reuse, mid-stream deadline trailers, 429/503 with
// Retry-After, and the defensive request-parsing paths. Runs under TSan
// in CI (handlers, workers, and the accept loop all touch the stream
// state).
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "durability/recovery.h"
#include "eval/answer_sink.h"
#include "live/snapshot_manager.h"
#include "server/data_server.h"
#include "server/rate_limiter.h"
#include "service/query_service.h"
#include "storage/database.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

namespace fs = std::filesystem;
using server::DataServer;
using server::DataServerOptions;
using server::RateLimiter;
using server::RateLimiterOptions;

// ------------------------------------------------------------ rate limiter

TEST(RateLimiterTest, DisabledLimiterAlwaysAllows) {
  RateLimiter limiter;  // qps 0 = off
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.TryAcquire("anyone", 0.0).allowed);
  }
  EXPECT_EQ(limiter.tracked_clients(), 0u);
}

TEST(RateLimiterTest, BurstThenDenyWithComputedRetryAfter) {
  RateLimiterOptions opts;
  opts.qps = 2;
  opts.burst = 3;
  RateLimiter limiter(opts);
  // The full burst spends instantly...
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(limiter.TryAcquire("c", 10.0).allowed) << i;
  }
  // ...then the bucket is empty: denial, with the exact deficit. Zero
  // tokens at 2 qps means a full token in 0.5 s.
  RateLimiter::Decision d = limiter.TryAcquire("c", 10.0);
  EXPECT_FALSE(d.allowed);
  EXPECT_NEAR(d.retry_after_s, 0.5, 1e-9);
  // Refill is continuous: after 0.25 s there is half a token — still
  // denied, retry_after shrinks accordingly.
  d = limiter.TryAcquire("c", 10.25);
  EXPECT_FALSE(d.allowed);
  EXPECT_NEAR(d.retry_after_s, 0.25, 1e-9);
  // After the advertised wait the acquire succeeds.
  EXPECT_TRUE(limiter.TryAcquire("c", 10.5 + 0.25).allowed);
}

TEST(RateLimiterTest, ClientsAreIsolated) {
  RateLimiterOptions opts;
  opts.qps = 1;
  opts.burst = 1;
  RateLimiter limiter(opts);
  EXPECT_TRUE(limiter.TryAcquire("hog", 0.0).allowed);
  EXPECT_FALSE(limiter.TryAcquire("hog", 0.0).allowed);
  // A different identity has its own untouched bucket.
  EXPECT_TRUE(limiter.TryAcquire("bystander", 0.0).allowed);
  EXPECT_EQ(limiter.tracked_clients(), 2u);
}

TEST(RateLimiterTest, EvictionKeepsTheTableBounded) {
  RateLimiterOptions opts;
  opts.qps = 1;
  opts.burst = 4;
  opts.max_clients = 8;
  RateLimiter limiter(opts);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        limiter.TryAcquire("client-" + std::to_string(i), 1.0 * i).allowed);
  }
  EXPECT_LE(limiter.tracked_clients(), 8u);
}

// --------------------------------------------------- service-layer streams

Program SgProgram(Database& db) {
  return ParseProgram(workloads::SgProgramText(), db.symbols()).take();
}

/// Records every chunk: tuples in arrival order, per-chunk sizes.
class RecordingSink : public AnswerSink {
 public:
  void OnAnswers(const Tuple* tuples, size_t count,
                 const SymbolTable& symbols) override {
    (void)symbols;
    chunk_sizes_.push_back(count);
    for (size_t i = 0; i < count; ++i) tuples_.push_back(tuples[i]);
  }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const std::vector<size_t>& chunk_sizes() const { return chunk_sizes_; }

 private:
  std::vector<Tuple> tuples_;
  std::vector<size_t> chunk_sizes_;
};

// The tentpole's core contract, proven at the service seam: chunks are
// delivered while the fixpoint runs (>= 2 chunks on a multi-iteration
// workload means the first chunk was flushed strictly before evaluation
// completed — every flush point precedes the engine's final sort), they
// are never empty, and their concatenation is exactly the blocking
// response's answer set.
TEST(ServiceStreamingTest, ChunksArriveIncrementallyAndConcatenateExactly) {
  Database db;
  std::string a = workloads::Fig7b(db, 64);
  QueryService service(&db, SgProgram(db), {2});
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  QueryRequest plain{"sg", a, "", {}};
  QueryResponse blocking = service.Eval(plain);
  ASSERT_TRUE(blocking.status.ok());
  ASSERT_FALSE(blocking.tuples.empty());
  EXPECT_EQ(blocking.trace.chunks, 0u);  // no sink, no chunks

  RecordingSink sink;
  QueryRequest streamed = plain;
  streamed.sink = &sink;
  QueryResponse resp = service.Eval(streamed);
  ASSERT_TRUE(resp.status.ok());

  // Incremental delivery: more than one chunk, none empty.
  EXPECT_GE(sink.chunk_sizes().size(), 2u) << "single flush: not streaming";
  for (size_t n : sink.chunk_sizes()) EXPECT_GT(n, 0u);
  EXPECT_EQ(resp.trace.chunks, sink.chunk_sizes().size());

  // Exactly-once, complete: sorted concatenation == the response tuples ==
  // the blocking response tuples.
  std::vector<Tuple> concat = sink.tuples();
  std::sort(concat.begin(), concat.end());
  EXPECT_EQ(concat, resp.tuples);
  EXPECT_EQ(resp.tuples, blocking.tuples);
}

TEST(ServiceStreamingTest, CacheHitReplaysAsOneChunkWithSameAnswers) {
  Database db;
  std::string a = workloads::Fig7b(db, 32);
  QueryServiceOptions opts;
  opts.num_threads = 2;
  opts.answer_cache_bytes = 1 << 20;
  QueryService service(&db, SgProgram(db), opts);
  ASSERT_TRUE(service.status().ok());

  RecordingSink first_sink;
  QueryRequest req{"sg", a, "", {}};
  req.sink = &first_sink;
  QueryResponse first = service.Eval(req);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.trace.cache_hit);
  EXPECT_GE(first.trace.chunks, 2u);

  RecordingSink second_sink;
  req.sink = &second_sink;
  QueryResponse second = service.Eval(req);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.trace.cache_hit);
  // Replayed answers arrive as a single, already-sorted chunk.
  EXPECT_EQ(second.trace.chunks, 1u);
  ASSERT_EQ(second_sink.chunk_sizes().size(), 1u);
  EXPECT_EQ(second_sink.tuples(), first.tuples);
  EXPECT_EQ(second.tuples, first.tuples);
}

TEST(ServiceStreamingTest, AllBindingPatternsStreamTheirFullAnswerSet) {
  Database db;
  workloads::Fig7c(db, 10);
  QueryService service(&db, SgProgram(db), {2});
  ASSERT_TRUE(service.status().ok());

  QueryRequest patterns[] = {
      {"sg", "a1", "", {}},   // p(a, Y)
      {"sg", "", "b3", {}},   // p(X, b): inverted system
      {"sg", "", "", {}},     // p(X, Y): all pairs
      {"sg", "a1", "a1", {}}  // membership
  };
  for (QueryRequest& req : patterns) {
    QueryResponse blocking = service.Eval(req);
    ASSERT_TRUE(blocking.status.ok()) << req.pred;
    RecordingSink sink;
    req.sink = &sink;
    QueryResponse streamed = service.Eval(req);
    req.sink = nullptr;
    ASSERT_TRUE(streamed.status.ok());
    std::vector<Tuple> concat = sink.tuples();
    std::sort(concat.begin(), concat.end());
    concat.erase(std::unique(concat.begin(), concat.end()), concat.end());
    EXPECT_EQ(concat, blocking.tuples)
        << "pattern (" << req.source << ", " << req.target << ")";
  }
}

// ------------------------------------------------------------ HTTP client

int ConnectTo(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// One parsed response. For chunked responses, `chunks` holds each data
/// chunk's payload in frame order and `body` their concatenation.
struct HttpResult {
  bool ok = false;
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
  bool chunked = false;
  std::vector<std::string> chunks;
};

/// Reads one full response off `fd` (keep-alive aware: stops at the
/// response's own end, not at connection close). `carry` holds bytes read
/// past the response for the next call.
bool ReadResponse(int fd, std::string* carry, HttpResult* out) {
  auto read_more = [&]() -> bool {
    char buf[4096];
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    carry->append(buf, static_cast<size_t>(n));
    return true;
  };

  size_t head_end;
  while ((head_end = carry->find("\r\n\r\n")) == std::string::npos) {
    if (!read_more()) return false;
  }
  std::string head = carry->substr(0, head_end);
  carry->erase(0, head_end + 4);

  if (head.rfind("HTTP/1.1 ", 0) != 0) return false;
  out->status = std::atoi(head.c_str() + 9);
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    size_t eol = head.find("\r\n", pos + 2);
    std::string line = head.substr(
        pos + 2, (eol == std::string::npos ? head.size() : eol) - pos - 2);
    pos = eol;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    size_t vstart = line.find_first_not_of(' ', colon + 1);
    out->headers[name] =
        vstart == std::string::npos ? "" : line.substr(vstart);
  }

  if (out->headers.count("transfer-encoding") != 0 &&
      out->headers["transfer-encoding"].find("chunked") != std::string::npos) {
    out->chunked = true;
    for (;;) {
      size_t line_end;
      while ((line_end = carry->find("\r\n")) == std::string::npos) {
        if (!read_more()) return false;
      }
      size_t chunk_len = std::strtoul(carry->substr(0, line_end).c_str(),
                                      nullptr, 16);
      carry->erase(0, line_end + 2);
      while (carry->size() < chunk_len + 2) {
        if (!read_more()) return false;
      }
      if (chunk_len == 0) {
        carry->erase(0, 2);  // the final chunk's CRLF
        break;
      }
      out->chunks.push_back(carry->substr(0, chunk_len));
      out->body += out->chunks.back();
      carry->erase(0, chunk_len + 2);
    }
  } else if (out->headers.count("content-length") != 0) {
    size_t want = std::strtoul(out->headers["content-length"].c_str(),
                               nullptr, 10);
    while (carry->size() < want) {
      if (!read_more()) return false;
    }
    out->body = carry->substr(0, want);
    carry->erase(0, want);
  }
  out->ok = out->status != 0;
  return true;
}

std::string QueryRequestRaw(const std::string& json,
                            const std::string& client_id = "",
                            bool close = false) {
  std::string raw = "POST /v1/query HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!client_id.empty()) raw += "X-Client-Id: " + client_id + "\r\n";
  if (close) raw += "Connection: close\r\n";
  raw += "Content-Length: " + std::to_string(json.size()) + "\r\n\r\n" + json;
  return raw;
}

/// One-shot POST /v1/query: connect, send, read one response, close.
HttpResult PostQuery(uint16_t port, const std::string& json,
                     const std::string& client_id = "") {
  HttpResult r;
  int fd = ConnectTo(port);
  if (fd < 0) return r;
  std::string raw = QueryRequestRaw(json, client_id, /*close=*/true);
  if (send(fd, raw.data(), raw.size(), MSG_NOSIGNAL) ==
      static_cast<ssize_t>(raw.size())) {
    std::string carry;
    ReadResponse(fd, &carry, &r);
  }
  close(fd);
  return r;
}

/// Splits an NDJSON body into its trailer line and everything before it.
bool SplitTrailer(const std::string& body, std::string* answers,
                  std::string* trailer) {
  size_t pos = body.rfind("{\"trailer\": ");
  if (pos == std::string::npos) return false;
  *answers = body.substr(0, pos);
  *trailer = body.substr(pos);
  return true;
}

// ------------------------------------------------------------ HTTP server

struct DataFixture {
  Database db;
  std::string source;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<DataServer> server;

  explicit DataFixture(int n = 64, DataServerOptions opts = {},
                       size_t cache_bytes = 0) {
    source = workloads::Fig7b(db, n);
    Program program =
        ParseProgram(workloads::SgProgramText(), db.symbols()).take();
    QueryServiceOptions sopts;
    sopts.num_threads = 2;
    sopts.answer_cache_bytes = cache_bytes;
    service = std::make_unique<QueryService>(&db, program, sopts);
    EXPECT_TRUE(service->status().ok()) << service->status().message();
    server = std::make_unique<DataServer>(service.get(), opts);
    EXPECT_TRUE(server->Start().ok());
    EXPECT_NE(server->port(), 0);
  }
};

TEST(DataServerTest, StreamedChunksMatchBufferedResponseExactly) {
  DataFixture fx(64);
  std::string body = "{\"pred\": \"sg\", \"source\": \"" + fx.source + "\"}";

  HttpResult streamed = PostQuery(fx.server->port(), body);
  ASSERT_TRUE(streamed.ok);
  EXPECT_EQ(streamed.status, 200);
  ASSERT_TRUE(streamed.chunked);
  // Incremental delivery on the wire: at least two answer chunks before
  // the trailer — the first HTTP chunk left the socket while the fixpoint
  // was still deriving the rest.
  ASSERT_GE(streamed.chunks.size(), 3u) << "answers + trailer";
  EXPECT_NE(streamed.chunks.back().find("\"trailer\""), std::string::npos);
  EXPECT_NE(streamed.chunks.back().find("\"status\": \"ok\""),
            std::string::npos);

  HttpResult buffered =
      PostQuery(fx.server->port(), "{\"pred\": \"sg\", \"source\": \"" +
                                       fx.source + "\", \"stream\": false}");
  ASSERT_TRUE(buffered.ok);
  EXPECT_EQ(buffered.status, 200);
  EXPECT_FALSE(buffered.chunked);

  // Byte identity of the answer payload: the concatenated streamed chunks
  // minus the trailer equal the buffered body minus its trailer (the
  // trailers differ only in wall-time fields).
  std::string streamed_answers, streamed_trailer;
  std::string buffered_answers, buffered_trailer;
  ASSERT_TRUE(
      SplitTrailer(streamed.body, &streamed_answers, &streamed_trailer));
  ASSERT_TRUE(
      SplitTrailer(buffered.body, &buffered_answers, &buffered_trailer));
  EXPECT_EQ(streamed_answers, buffered_answers);
  ASSERT_FALSE(streamed_answers.empty());
  // Same terminal accounting (answers/chunks/status), modulo timings.
  size_t answers_at = buffered_trailer.find("\"answers\": ");
  ASSERT_NE(answers_at, std::string::npos);
  EXPECT_NE(streamed_trailer.find(buffered_trailer.substr(
                answers_at, buffered_trailer.find(", \"stats\"") - answers_at)),
            std::string::npos)
      << streamed_trailer << " vs " << buffered_trailer;
}

TEST(DataServerTest, StreamedAndBufferedAgreeOnCacheHits) {
  DataFixture fx(32, {}, /*cache_bytes=*/1 << 20);
  std::string body = "{\"pred\": \"sg\", \"source\": \"" + fx.source + "\"}";
  // Prime the cache, then compare replays on both paths: a cache hit is
  // one chunk on the streamed path and the same single line buffered.
  HttpResult prime = PostQuery(fx.server->port(), body);
  ASSERT_TRUE(prime.ok);
  ASSERT_EQ(prime.status, 200);

  HttpResult streamed = PostQuery(fx.server->port(), body);
  ASSERT_TRUE(streamed.ok);
  ASSERT_TRUE(streamed.chunked);
  EXPECT_EQ(streamed.chunks.size(), 2u) << "one replayed chunk + trailer";
  HttpResult buffered = PostQuery(
      fx.server->port(), "{\"pred\": \"sg\", \"source\": \"" + fx.source +
                             "\", \"stream\": false}");
  ASSERT_TRUE(buffered.ok);
  std::string sa, st, ba, bt;
  ASSERT_TRUE(SplitTrailer(streamed.body, &sa, &st));
  ASSERT_TRUE(SplitTrailer(buffered.body, &ba, &bt));
  EXPECT_EQ(sa, ba);
  EXPECT_NE(st.find("\"chunks\": 1"), std::string::npos) << st;
}

TEST(DataServerTest, KeepAliveServesMultipleQueriesOnOneConnection) {
  DataFixture fx(16);
  int fd = ConnectTo(fx.server->port());
  ASSERT_GE(fd, 0);
  std::string carry;
  for (int round = 0; round < 3; ++round) {
    std::string raw = QueryRequestRaw("{\"pred\": \"sg\", \"source\": \"" +
                                      fx.source + "\"}");
    ASSERT_EQ(send(fd, raw.data(), raw.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(raw.size()));
    HttpResult r;
    ASSERT_TRUE(ReadResponse(fd, &carry, &r)) << "round " << round;
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.headers["connection"], "keep-alive");
    EXPECT_NE(r.body.find("\"status\": \"ok\""), std::string::npos);
  }
  close(fd);
  EXPECT_GE(fx.server->requests_served(), 3u);
}

TEST(DataServerTest, MidStreamDeadlineYieldsWellFormedPartialTrailer) {
  DataFixture fx(1024);
  // A budget far below the uncancelled runtime (hundreds of ms at
  // n=1024): the deadline trips mid-evaluation, after some chunks may
  // already be on the wire — the stream still ends with a complete
  // trailer carrying the terminal status.
  HttpResult r = PostQuery(
      fx.server->port(),
      "{\"pred\": \"sg\", \"source\": \"" + fx.source +
          "\", \"options\": {\"deadline_ms\": 15}}");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  ASSERT_FALSE(r.chunks.empty());
  const std::string& trailer = r.chunks.back();
  EXPECT_NE(trailer.find("\"trailer\""), std::string::npos);
  EXPECT_NE(trailer.find("\"status\": \"deadline_exceeded\""),
            std::string::npos)
      << trailer;
  EXPECT_NE(trailer.find("\"timed_out\": true"), std::string::npos);
}

TEST(DataServerTest, RateLimitedClientGets429WhileOthersKeepServing) {
  DataServerOptions opts;
  opts.rate_limit.qps = 0.001;  // effectively one request per bucket
  opts.rate_limit.burst = 2;
  DataFixture fx(16, opts);
  std::string body = "{\"pred\": \"sg\", \"source\": \"" + fx.source + "\"}";

  // The hog spends its burst...
  for (int i = 0; i < 2; ++i) {
    HttpResult r = PostQuery(fx.server->port(), body, "hog");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 200) << i;
  }
  // ...and is then answered 429 with a computed, positive Retry-After.
  HttpResult limited = PostQuery(fx.server->port(), body, "hog");
  ASSERT_TRUE(limited.ok);
  EXPECT_EQ(limited.status, 429);
  ASSERT_NE(limited.headers.count("retry-after"), 0u);
  EXPECT_GE(std::atoi(limited.headers["retry-after"].c_str()), 1);
  EXPECT_NE(limited.body.find("\"status\": \"overloaded\""),
            std::string::npos);

  // A different client id on the same socket peer is admitted: the bucket
  // key is the identity, not the connection.
  HttpResult other = PostQuery(fx.server->port(), body, "bystander");
  ASSERT_TRUE(other.ok);
  EXPECT_EQ(other.status, 200);
}

TEST(DataServerTest, RotatingClientIdsCannotMintFreshBuckets) {
  // The identity is client-controlled, so a fresh id per request would
  // mean a fresh full bucket per request — admission bypassed. The
  // peer-aggregate layer closes that: every request is charged against
  // the peer's budget first, whatever id it claims.
  DataServerOptions opts;
  opts.rate_limit.qps = 0.001;  // no meaningful refill inside the test
  opts.rate_limit.burst = 1;
  opts.peer_qps_multiplier = 3;  // peer bucket: burst 3
  DataFixture fx(16, opts);
  std::string body = "{\"pred\": \"sg\", \"source\": \"" + fx.source + "\"}";

  int served = 0;
  HttpResult last_limited;
  for (int i = 0; i < 8; ++i) {
    HttpResult r =
        PostQuery(fx.server->port(), body, "rotate-" + std::to_string(i));
    ASSERT_TRUE(r.ok) << i;
    if (r.status == 200) {
      ++served;
    } else {
      EXPECT_EQ(r.status, 429) << i;
      last_limited = r;
    }
  }
  // Exactly the peer burst is admitted; every rotation past it is 429
  // with the peer bucket's computed Retry-After.
  EXPECT_EQ(served, 3);
  ASSERT_NE(last_limited.headers.count("retry-after"), 0u);
  EXPECT_GE(std::atoi(last_limited.headers["retry-after"].c_str()), 1);
}

TEST(DataServerTest, SurrogatePairEscapesDecodeAndHalvesAreRejected) {
  DataFixture fx(8);
  uint16_t port = fx.server->port();

  // A paired \uD83D\uDE00 escape decodes to one supplementary code point
  // (U+1F600): the request is well-formed, the constant merely unknown —
  // an empty answer set, not an error.
  HttpResult paired = PostQuery(
      port, "{\"pred\": \"sg\", \"source\": \"\\ud83d\\ude00\"}");
  ASSERT_TRUE(paired.ok);
  EXPECT_EQ(paired.status, 200);
  EXPECT_NE(paired.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(paired.body.find("\"answers\": 0"), std::string::npos);

  // Unpaired halves would encode as CESU-8 (invalid UTF-8 flowing into
  // symbol lookups and echoes): rejected outright.
  const char* broken[] = {
      "{\"pred\": \"sg\", \"source\": \"\\ud83d\"}",          // lone high
      "{\"pred\": \"sg\", \"source\": \"\\ude00\"}",          // lone low
      "{\"pred\": \"sg\", \"source\": \"\\ud83d\\u0041\"}",   // high + BMP
      "{\"pred\": \"sg\", \"source\": \"\\ud83d\\ud83d\"}"};  // high + high
  for (const char* body : broken) {
    HttpResult r = PostQuery(port, body);
    ASSERT_TRUE(r.ok) << body;
    EXPECT_EQ(r.status, 400) << body;
  }
}

TEST(DataServerTest, HugeMaxIterationsClampsInsteadOfOverflowing) {
  DataFixture fx(16);
  // 1e300 is far outside the size_t range; the decoder must clamp it to
  // the type's ceiling (effectively unbounded) instead of performing an
  // undefined cast — the query then simply runs to its natural fixpoint.
  HttpResult r = PostQuery(
      fx.server->port(),
      "{\"pred\": \"sg\", \"source\": \"" + fx.source +
          "\", \"options\": {\"max_iterations\": 1e300}, \"stream\": false}");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_EQ(r.body.find("\"answers\": 0"), std::string::npos);
}

/// Self-cleaning scratch directory for the recovery-gated scenario.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "binchain_data_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* p = mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path_ = p;
  }
  ~TempDir() {
    std::error_code ec;
    if (!path_.empty()) fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(DataServerTest, NotServingServiceYields503WithRetryAfter) {
  // A service whose recovery gate has not opened yet answers every
  // admitted request kUnavailable; the data plane maps that to
  // 503 + Retry-After (mirroring the admin plane's shed semantics), and
  // after FinishRecovery() the same request is served 200.
  TempDir dir;
  auto rm = durability::RecoveryManager::Load(dir.path()).take();
  auto genesis = rm->BuildGenesis();
  std::string a = workloads::Fig7b(*genesis, 8);
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
  SnapshotManager manager(std::move(genesis));
  QueryService service(&manager, rm.get(), program, {2, 64});
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  DataServer srv(&service);
  ASSERT_TRUE(srv.Start().ok());
  std::string body = "{\"pred\": \"sg\", \"source\": \"" + a + "\"}";

  HttpResult gated = PostQuery(srv.port(), body);
  ASSERT_TRUE(gated.ok);
  EXPECT_EQ(gated.status, 503);
  ASSERT_NE(gated.headers.count("retry-after"), 0u);
  EXPECT_GE(std::atoi(gated.headers["retry-after"].c_str()), 1);
  EXPECT_NE(gated.body.find("\"status\": \"unavailable\""),
            std::string::npos);

  ASSERT_TRUE(service.FinishRecovery().ok());

  HttpResult served = PostQuery(srv.port(), body);
  ASSERT_TRUE(served.ok);
  EXPECT_EQ(served.status, 200);
}

TEST(DataServerTest, MalformedRequestsAreRejectedDefensively) {
  DataFixture fx(8);
  uint16_t port = fx.server->port();

  // Bad JSON.
  HttpResult bad = PostQuery(port, "{\"pred\": ");
  ASSERT_TRUE(bad.ok);
  EXPECT_EQ(bad.status, 400);
  // Missing pred.
  HttpResult nopred = PostQuery(port, "{\"source\": \"x\"}");
  ASSERT_TRUE(nopred.ok);
  EXPECT_EQ(nopred.status, 400);
  // Unknown field: fail loudly, not silently.
  HttpResult typo = PostQuery(port, "{\"pred\": \"sg\", \"sourec\": \"x\"}");
  ASSERT_TRUE(typo.ok);
  EXPECT_EQ(typo.status, 400);
  EXPECT_NE(typo.body.find("sourec"), std::string::npos);
  // Unknown predicate resolves to 404 (the query never ran).
  HttpResult nopredicate = PostQuery(port, "{\"pred\": \"nosuch\"}");
  ASSERT_TRUE(nopredicate.ok);
  EXPECT_EQ(nopredicate.status, 404);
  EXPECT_NE(nopredicate.body.find("\"status\": \"not_found\""),
            std::string::npos);

  int fd = ConnectTo(port);
  ASSERT_GE(fd, 0);
  // Unknown path.
  std::string raw =
      "POST /v2/nope HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
  ASSERT_GT(send(fd, raw.data(), raw.size(), MSG_NOSIGNAL), 0);
  std::string carry;
  HttpResult notfound;
  ASSERT_TRUE(ReadResponse(fd, &carry, &notfound));
  EXPECT_EQ(notfound.status, 404);
  close(fd);

  // GET on the query path.
  fd = ConnectTo(port);
  ASSERT_GE(fd, 0);
  raw = "GET /v1/query HTTP/1.1\r\n\r\n";
  ASSERT_GT(send(fd, raw.data(), raw.size(), MSG_NOSIGNAL), 0);
  carry.clear();
  HttpResult wrong_method;
  ASSERT_TRUE(ReadResponse(fd, &carry, &wrong_method));
  EXPECT_EQ(wrong_method.status, 405);
  close(fd);

  // POST without Content-Length.
  fd = ConnectTo(port);
  ASSERT_GE(fd, 0);
  raw = "POST /v1/query HTTP/1.1\r\n\r\n";
  ASSERT_GT(send(fd, raw.data(), raw.size(), MSG_NOSIGNAL), 0);
  carry.clear();
  HttpResult unsized;
  ASSERT_TRUE(ReadResponse(fd, &carry, &unsized));
  EXPECT_EQ(unsized.status, 411);
  close(fd);

  // Oversized declared body.
  DataServerOptions small;
  small.max_body_bytes = 64;
  DataFixture tight(8, small);
  fd = ConnectTo(tight.server->port());
  ASSERT_GE(fd, 0);
  raw = "POST /v1/query HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
  ASSERT_GT(send(fd, raw.data(), raw.size(), MSG_NOSIGNAL), 0);
  carry.clear();
  HttpResult oversized;
  ASSERT_TRUE(ReadResponse(fd, &carry, &oversized));
  EXPECT_EQ(oversized.status, 413);
  close(fd);

  EXPECT_GE(fx.server->request_errors(), 5u);
}

TEST(DataServerTest, ExpectContinueBodiesAreAccepted) {
  DataFixture fx(8);
  int fd = ConnectTo(fx.server->port());
  ASSERT_GE(fd, 0);
  std::string json = "{\"pred\": \"sg\", \"source\": \"" + fx.source + "\"}";
  // curl-style two-phase POST: headers with Expect, body after the 100.
  std::string head =
      "POST /v1/query HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: " +
      std::to_string(json.size()) + "\r\nConnection: close\r\n\r\n";
  ASSERT_GT(send(fd, head.data(), head.size(), MSG_NOSIGNAL), 0);
  std::string carry;
  char buf[256];
  ssize_t n = recv(fd, buf, sizeof(buf), 0);
  ASSERT_GT(n, 0);
  carry.assign(buf, static_cast<size_t>(n));
  ASSERT_NE(carry.find("100 Continue"), std::string::npos);
  carry.erase(0, carry.find("\r\n\r\n") + 4);
  ASSERT_GT(send(fd, json.data(), json.size(), MSG_NOSIGNAL), 0);
  HttpResult r;
  ASSERT_TRUE(ReadResponse(fd, &carry, &r));
  EXPECT_EQ(r.status, 200);
  close(fd);
}

}  // namespace
}  // namespace binchain
