// Cross-strategy integration tests: the graph-traversal engine, the
// bottom-up baselines, the level-based methods and the Section-4
// transformation must agree on the paper's example programs and workloads.
#include <gtest/gtest.h>

#include <set>

#include "baselines/bottom_up.h"
#include "baselines/counting.h"
#include "baselines/magic.h"
#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "eval/query.h"
#include "transform/binarize.h"
#include "transform/simple_bin.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

Program MustParse(const std::string& text, SymbolTable& symbols) {
  auto r = ParseProgram(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

Literal MustLiteral(const std::string& text, SymbolTable& symbols) {
  auto r = ParseLiteral(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

/// Runs every applicable strategy on a binary query and checks agreement.
void ExpectAllStrategiesAgree(Database& db, const std::string& program_text,
                              const std::string& query_text) {
  Program program = MustParse(program_text, db.symbols());
  Literal query = MustLiteral(query_text, db.symbols());

  auto semi = SeminaiveQuery(program, db, query, nullptr);
  ASSERT_TRUE(semi.ok()) << semi.status().message();
  const std::vector<Tuple>& expected = semi.value();

  auto naive = NaiveQuery(program, db, query, nullptr);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive.value(), expected) << "naive disagrees on " << query_text;

  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgram(program).ok());
  auto ours = qe.Query(query);
  ASSERT_TRUE(ours.ok()) << ours.status().message();
  EXPECT_EQ(ours.value().tuples, expected)
      << "graph traversal disagrees on " << query_text;

  auto magic = MagicQuery(program, db, query, nullptr);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  EXPECT_EQ(magic.value(), expected) << "magic disagrees on " << query_text;

  auto transformed = EvaluateViaBinarization(program, db, query);
  if (transformed.ok()) {
    EXPECT_EQ(transformed.value().tuples, expected)
        << "binarization disagrees on " << query_text;
  }

  auto simple = SimpleBinQuery(program, db, query, nullptr);
  ASSERT_TRUE(simple.ok()) << simple.status().message();
  EXPECT_EQ(simple.value(), expected)
      << "simple-bin disagrees on " << query_text;
}

TEST(IntegrationTest, Fig7aAllStrategies) {
  Database db;
  std::string a = workloads::Fig7a(db, 6);
  ExpectAllStrategiesAgree(db, workloads::SgProgramText(),
                           "sg(" + a + ", Y)");
}

TEST(IntegrationTest, Fig7bAllStrategies) {
  Database db;
  std::string a = workloads::Fig7b(db, 7);
  ExpectAllStrategiesAgree(db, workloads::SgProgramText(),
                           "sg(" + a + ", Y)");
}

TEST(IntegrationTest, Fig7cAllStrategies) {
  Database db;
  std::string a = workloads::Fig7c(db, 7);
  ExpectAllStrategiesAgree(db, workloads::SgProgramText(),
                           "sg(" + a + ", Y)");
}

TEST(IntegrationTest, MidLadderSource) {
  Database db;
  workloads::Fig7c(db, 9);
  ExpectAllStrategiesAgree(db, workloads::SgProgramText(), "sg(a4, Y)");
}

TEST(IntegrationTest, PathOnRandomGraph) {
  Database db;
  Rng rng(17);
  workloads::RandomGraph(db, "e", "v", 20, 45, rng);
  ExpectAllStrategiesAgree(db, workloads::PathProgramText(), "path(v3, Y)");
}

TEST(IntegrationTest, PaperExampleProgramAgainstSeminaive) {
  // The Lemma 1 worked example evaluated end to end: the equation system the
  // transformation produces must define the same relations as the rules.
  Database db;
  Rng rng(23);
  // Acyclic base data: the nonregular predicates (q1, q2) expand one
  // machine copy per base step, so cyclic data would not terminate without
  // the iteration bound.
  for (const char* rel : {"a", "b", "c", "d", "e"}) {
    workloads::RandomDag(db, rel, "n", 10, 14, rng);
  }
  const char* program =
      "p1(X, Z) :- b(X, Y), p2(Y, Z).\n"
      "p1(X, Z) :- q1(X, Y), p3(Y, Z).\n"
      "p2(X, Z) :- c(X, Y), p1(Y, Z).\n"
      "p2(X, Z) :- d(X, Y), p3(Y, Z).\n"
      "p3(X, Y) :- a(X, Y).\n"
      "p3(X, Z) :- e(X, Y), p2(Y, Z).\n"
      "q1(X, Z) :- a(X, Y), q2(Y, Z).\n"
      "q2(X, Y) :- r2(X, Y).\n"
      "q2(X, Z) :- q1(X, Y), r1(Y, Z).\n"
      "r1(X, Y) :- b(X, Y).\n"
      "r1(X, Y) :- r2(X, Y).\n"
      "r2(X, Z) :- r1(X, Y), c(Y, Z).\n";
  Program p = MustParse(program, db.symbols());

  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgram(p).ok());
  for (const char* pred : {"p1", "p2", "p3", "q1", "q2", "r1", "r2"}) {
    for (int src = 0; src < 10; ++src) {
      std::string q =
          std::string(pred) + "(n" + std::to_string(src) + ", Y)";
      Literal lit = MustLiteral(q, db.symbols());
      auto expected = SeminaiveQuery(p, db, lit, nullptr);
      ASSERT_TRUE(expected.ok());
      auto got = qe.Query(lit);
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(got.value().tuples, expected.value()) << q;
    }
  }
}

TEST(IntegrationTest, FlightConnectionsAgainstBaselines) {
  Database db;
  workloads::FlightSpec spec;
  spec.airports = 5;
  spec.flights = 30;
  spec.horizon = 20;
  spec.seed = 5;
  std::string p0 = workloads::BuildFlights(db, spec);
  SymbolId p0_sym = *db.symbols().Find(p0);
  std::string dt;
  for (const Tuple& t : db.Find("flight")->tuples()) {
    if (t[0] == p0_sym) {
      dt = db.symbols().Name(t[1]);
      break;
    }
  }
  ASSERT_FALSE(dt.empty());
  Program program = MustParse(workloads::FlightProgramText(), db.symbols());
  Literal query = MustLiteral("cnx(" + p0 + ", " + dt + ", D, AT)",
                              db.symbols());

  auto semi = SeminaiveQuery(program, db, query, nullptr);
  ASSERT_TRUE(semi.ok());
  auto naive = NaiveQuery(program, db, query, nullptr);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive.value(), semi.value());
  auto magic = MagicQuery(program, db, query, nullptr);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  EXPECT_EQ(magic.value(), semi.value());
  auto transformed = EvaluateViaBinarization(program, db, query);
  ASSERT_TRUE(transformed.ok()) << transformed.status().message();
  EXPECT_EQ(transformed.value().tuples, semi.value());
}

TEST(IntegrationTest, InverseQueryMatchesForwardEnumeration) {
  Database db;
  Rng rng(31);
  workloads::RandomGraph(db, "e", "v", 15, 30, rng);
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto all = qe.Query("path(X, Y)");
  ASSERT_TRUE(all.ok());
  // For every target b, path(X, b) must equal the slice of path(X, Y).
  std::set<SymbolId> targets;
  for (const Tuple& t : all.value().tuples) targets.insert(t[1]);
  for (SymbolId b : targets) {
    auto r = qe.Query("path(X, " + db.symbols().Name(b) + ")");
    ASSERT_TRUE(r.ok());
    std::vector<Tuple> expected;
    for (const Tuple& t : all.value().tuples) {
      if (t[1] == b) expected.push_back(t);
    }
    EXPECT_EQ(r.value().tuples, expected);
  }
}

TEST(IntegrationTest, CountingAgreesWithEngineOnAcyclicSg) {
  Database db;
  std::string a = workloads::Fig7b(db, 9);
  Program program = MustParse(workloads::SgProgramText(), db.symbols());
  auto eqs = TransformToEquations(program, db.symbols());
  ASSERT_TRUE(eqs.ok());
  LinearNormalForm nf;
  ASSERT_TRUE(MatchLinearNormalForm(eqs.value().final_system,
                                    *db.symbols().Find("sg"), &nf));
  ViewRegistry views(&db.symbols());
  views.RegisterDatabase(db);
  TermId src = views.pool().Unary(*db.symbols().Find(a));

  auto counting = CountingQuery(views, nf, src, 10000, nullptr);
  ASSERT_TRUE(counting.ok());
  auto hn = HenschenNaqviQuery(views, nf, src, 10000, nullptr);
  ASSERT_TRUE(hn.ok());
  auto rc = ReverseCountingQuery(views, nf, src, 10000, nullptr);
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(counting.value(), hn.value());
  EXPECT_EQ(counting.value(), rc.value());

  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgram(program).ok());
  auto ours = qe.Query("sg(" + a + ", Y)");
  ASSERT_TRUE(ours.ok());
  std::set<std::string> engine_names;
  for (const Tuple& t : ours.value().tuples) {
    engine_names.insert(db.symbols().Name(t[1]));
  }
  std::set<std::string> counting_names;
  for (TermId y : counting.value()) {
    counting_names.insert(db.symbols().Name(views.pool().AsUnary(y)));
  }
  EXPECT_EQ(engine_names, counting_names);
}

}  // namespace
}  // namespace binchain
