// Edge cases across the stack: degenerate equations, reflexive closure,
// empty relations, unknown constants, error paths, memoization behaviour.
#include <gtest/gtest.h>

#include <set>

#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "eval/query.h"
#include "eval/relation_view.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

Program MustParse(const std::string& text, SymbolTable& symbols) {
  auto r = ParseProgram(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

TEST(EquationEdgeTest, PureLeftRecursionWithoutBaseCaseIsEmpty) {
  // p = p.e has least solution 0 (paper: "degenerate equations such as
  // p = p.e1 are interpreted as p = 0").
  SymbolTable symbols;
  Program p = MustParse("p(X, Z) :- p(X, Y), e(Y, Z).\n", symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().final_system.Rhs(*symbols.Find("p"))->IsEmpty());
}

TEST(EquationEdgeTest, SelfAlternativeDisappears) {
  // p = e U p  =>  p = e.id* = e.
  SymbolTable symbols;
  Program p = MustParse("p(X, Y) :- e(X, Y).\np(X, Y) :- p(X, Y).\n", symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(RexToString(r.value().final_system.Rhs(*symbols.Find("p")),
                        symbols),
            "e");
}

TEST(EquationEdgeTest, ReflexiveTransitiveClosureViaEmptyBodyRule) {
  SymbolTable symbols;
  Program p = MustParse("star(X, X).\nstar(X, Z) :- star(X, Y), e(Y, Z).\n",
                        symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok());
  // star = id U star.e => id.e* => e*.
  EXPECT_EQ(RexToString(r.value().final_system.Rhs(*symbols.Find("star")),
                        symbols),
            "e*");
}

TEST(EngineEdgeTest, ReflexiveClosureIncludesSource) {
  Database db;
  db.AddFact("e", {"a", "b"});
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(
                    "star(X, X).\nstar(X, Z) :- star(X, Y), e(Y, Z).\n")
                  .ok());
  auto r = qe.Query("star(a, Y)");
  ASSERT_TRUE(r.ok()) << r.status().message();
  std::set<std::string> names;
  for (const Tuple& t : r.value().tuples) names.insert(db.symbols().Name(t[1]));
  EXPECT_EQ(names, (std::set<std::string>{"a", "b"}));
}

TEST(EngineEdgeTest, UnknownSourceConstantYieldsEmptyAnswer) {
  Database db;
  db.AddFact("e", {"a", "b"});
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("path(zzz, Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().tuples.empty());
}

TEST(EngineEdgeTest, MissingBaseRelationIsReported) {
  Database db;
  db.AddFact("e", {"a", "b"});
  QueryEngine qe(&db);
  // The program references `ghost`, which has no facts at all.
  ASSERT_TRUE(qe.LoadProgramText(
                    "p(X, Y) :- e(X, Y).\np(X, Z) :- ghost(X, Y), p(Y, Z).\n")
                  .ok());
  auto r = qe.Query("p(a, Y)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(EngineEdgeTest, DoubleLoadRejected) {
  Database db;
  db.AddFact("e", {"a", "b"});
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  EXPECT_FALSE(qe.LoadProgramText(workloads::PathProgramText()).ok());
}

TEST(EngineEdgeTest, NonBinaryQueryRejected) {
  Database db;
  db.AddFact("e", {"a", "b"});
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("path(a, Y, Z)");
  EXPECT_FALSE(r.ok());
}

TEST(EngineEdgeTest, FigureOneEquationEvaluates) {
  // p = (b3.b4* U b2.p).b1 expressed as a program; hand-computed answers.
  Database db;
  db.AddFact("b3", {"s", "x"});
  db.AddFact("b4", {"x", "x2"});
  db.AddFact("b1", {"x", "t1"});
  db.AddFact("b1", {"x2", "t2"});
  db.AddFact("b2", {"s", "s2"});
  db.AddFact("b3", {"s2", "y"});
  db.AddFact("b1", {"y", "t3"});
  QueryEngine qe(&db);
  // p :- m(X,Y), b1(Y,Z) with m = b3.b4* U b2.p; b4* via reflexive rule.
  ASSERT_TRUE(qe.LoadProgramText(
                    "p(X, Z) :- m(X, Y), b1(Y, Z).\n"
                    "m(X, Z) :- b3(X, Y), s4(Y, Z).\n"
                    "m(X, Z) :- b2(X, Y), p(Y, Z).\n"
                    "s4(X, X).\n"
                    "s4(X, Z) :- s4(X, Y), b4(Y, Z).\n")
                  .ok());
  auto r = qe.Query("p(s, Y)");
  ASSERT_TRUE(r.ok()) << r.status().message();
  std::set<std::string> names;
  for (const Tuple& t : r.value().tuples) names.insert(db.symbols().Name(t[1]));
  // Direct: b3(s,x).b4*: {x, x2} -> b1 -> {t1, t2}.
  // Via b2: b2(s,s2), p(s2,.): b3(s2,y).b4*: {y} -> b1 -> {t3};
  //         then p(s,.) adds b1 after p(s2, t3): b1(t3, .) is empty.
  EXPECT_TRUE(names.count("t1"));
  EXPECT_TRUE(names.count("t2"));
  EXPECT_EQ(names.size(), 2u);  // t3 is an answer of p(s2, .), not p(s, .)
}

TEST(EngineEdgeTest, EmptyRelationViewGivesEmptyAnswers) {
  Database db;
  db.GetOrCreate("e", 2);  // exists but empty
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("path(a, Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().tuples.empty());
}

TEST(DemandViewTest, MemoizationAvoidsRefetching) {
  Database db;
  db.AddFact("b", {"a", "x"});
  db.AddFact("b", {"a", "y"});
  SymbolTable& symbols = db.symbols();
  TermPool pool;
  SymbolId var_in = symbols.Intern("I");
  SymbolId var_out = symbols.Intern("O");
  Literal body{symbols.Intern("b"), {Term::Var(var_in), Term::Var(var_out)}};
  DemandJoinView view(&db, &pool, {body}, {var_in}, {Term::Var(var_out)});

  TermId a = pool.Unary(symbols.Intern("a"));
  size_t count1 = 0, count2 = 0;
  view.ForEachSucc(a, [&](TermId) { ++count1; });
  uint64_t fetches_after_first = db.TotalFetches();
  view.ForEachSucc(a, [&](TermId) { ++count2; });
  EXPECT_EQ(count1, 2u);
  EXPECT_EQ(count2, 2u);
  EXPECT_EQ(db.TotalFetches(), fetches_after_first);  // served from memo
}

TEST(DemandViewTest, ArityMismatchYieldsNoResults) {
  Database db;
  db.AddFact("b", {"a", "x"});
  TermPool pool;
  SymbolId var_in = db.symbols().Intern("I");
  SymbolId var_out = db.symbols().Intern("O");
  Literal body{db.symbols().Intern("b"),
               {Term::Var(var_in), Term::Var(var_out)}};
  DemandJoinView view(&db, &pool, {body}, {var_in}, {Term::Var(var_out)});
  TermId pair = pool.InternTuple({1, 2});  // arity 2 input for 1-var view
  size_t count = 0;
  view.ForEachSucc(pair, [&](TermId) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(Lemma1VerifierTest, PassesOnPaperExample) {
  SymbolTable symbols;
  Program p = MustParse(
      "p1(X, Z) :- b(X, Y), p2(Y, Z).\n"
      "p1(X, Z) :- q1(X, Y), p3(Y, Z).\n"
      "p2(X, Z) :- c(X, Y), p1(Y, Z).\n"
      "p2(X, Z) :- d(X, Y), p3(Y, Z).\n"
      "p3(X, Y) :- a(X, Y).\n"
      "p3(X, Z) :- e(X, Y), p2(Y, Z).\n"
      "q1(X, Z) :- a(X, Y), q2(Y, Z).\n"
      "q2(X, Y) :- r2(X, Y).\n"
      "q2(X, Z) :- q1(X, Y), r1(Y, Z).\n"
      "r1(X, Y) :- b(X, Y).\n"
      "r1(X, Y) :- r2(X, Y).\n"
      "r2(X, Z) :- r1(X, Y), c(Y, Z).\n",
      symbols);
  auto r = TransformToEquations(p, symbols);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(VerifyLemma1Statements(p, symbols, r.value()).ok())
      << VerifyLemma1Statements(p, symbols, r.value()).message();
}

TEST(ParserEdgeTest, ZeroArityAtomsAndLongPrograms) {
  SymbolTable symbols;
  auto p = ParseProgram("flag() :- b(X, Y).\n", symbols);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().rules[0].head.arity(), 0u);

  // A generated 500-rule program parses cleanly.
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "p" + std::to_string(i) + "(X, Y) :- b(X, Y).\n";
  }
  auto big = ParseProgram(text, symbols);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value().rules.size(), 500u);
}

TEST(ParserEdgeTest, RandomGarbageNeverCrashes) {
  // Robustness: the parser must return a Status, never crash, on arbitrary
  // byte soup assembled from its own token alphabet.
  Rng rng(2718);
  const char* pieces[] = {"p", "(", ")", ",", ".", ":-", "?-", "X", "42",
                          "<", "'q", "%c\n", " ", "\n", "_", "b(", "a,"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    size_t len = rng.Below(30);
    for (size_t i = 0; i < len; ++i) {
      text += pieces[rng.Below(sizeof(pieces) / sizeof(pieces[0]))];
    }
    SymbolTable symbols;
    auto r = ParseProgram(text, symbols);  // must not crash or hang
    (void)r;
  }
  SUCCEED();
}

TEST(ParserEdgeTest, HyphenatedAndNumericConstants) {
  SymbolTable symbols;
  auto p = ParseProgram("is-deptime(830).\nd(x, -5).\n", symbols);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().facts.size(), 2u);
  EXPECT_EQ(symbols.IntValue(p.value().facts[1].args[1].symbol).value_or(0),
            -5);
}

}  // namespace
}  // namespace binchain
