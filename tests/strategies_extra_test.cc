// Additional cross-strategy coverage: unusual binding patterns (all-free
// magic with zero-arity magic seeds, second-argument-bound adornments),
// engine statistics invariants, and level-method behaviour on wide data.
#include <gtest/gtest.h>

#include <set>

#include "baselines/bottom_up.h"
#include "baselines/counting.h"
#include "baselines/magic.h"
#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "eval/query.h"
#include "transform/adorn.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

Program MustParse(const std::string& text, SymbolTable& symbols) {
  auto r = ParseProgram(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

Literal MustLiteral(const std::string& text, SymbolTable& symbols) {
  auto r = ParseLiteral(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

TEST(MagicExtraTest, AllFreeQueryUsesZeroArityMagicSeed) {
  Database db;
  std::string a = workloads::Fig7c(db, 6);
  (void)a;
  Program p = MustParse(workloads::SgProgramText(), db.symbols());
  Literal q = MustLiteral("sg(X, Y)", db.symbols());
  auto magic = MagicQuery(p, db, q, nullptr);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  auto semi = SeminaiveQuery(p, db, q, nullptr);
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(magic.value(), semi.value());
  EXPECT_FALSE(magic.value().empty());
}

TEST(MagicExtraTest, SecondArgumentBoundAdornsFb) {
  Database db;
  workloads::Fig7a(db, 5);
  Program p = MustParse(workloads::SgProgramText(), db.symbols());
  auto adorned =
      AdornProgram(p, db.symbols(), MustLiteral("sg(X, e3)", db.symbols()));
  ASSERT_TRUE(adorned.ok());
  EXPECT_EQ(adorned.value().query.adornment.ToString(), "fb");
  // In the fb rule the *down* literal is the prefix and up the suffix.
  for (const AdornedRule& r : adorned.value().rules) {
    if (!r.has_derived) continue;
    ASSERT_EQ(r.prefix.size(), 1u);
    EXPECT_EQ(db.symbols().Name(r.prefix[0].predicate), "down");
    ASSERT_EQ(r.suffix.size(), 1u);
    EXPECT_EQ(db.symbols().Name(r.suffix[0].predicate), "up");
  }
  Literal q = MustLiteral("sg(X, e3)", db.symbols());
  auto magic = MagicQuery(p, db, q, nullptr);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  auto semi = SeminaiveQuery(p, db, q, nullptr);
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(magic.value(), semi.value());
}

TEST(MagicExtraTest, BothBoundQuery) {
  Database db;
  std::string a = workloads::Fig7c(db, 6);
  Program p = MustParse(workloads::SgProgramText(), db.symbols());
  Literal q = MustLiteral("sg(" + a + ", b1)", db.symbols());
  auto magic = MagicQuery(p, db, q, nullptr);
  ASSERT_TRUE(magic.ok()) << magic.status().message();
  EXPECT_EQ(magic.value().size(), 1u);
}

TEST(EngineStatsTest, ExpansionsTrackIterationsOnSg) {
  Database db;
  std::string a = workloads::Fig7c(db, 10);
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  auto r = qe.Query("sg(" + a + ", Y)");
  ASSERT_TRUE(r.ok());
  // One sg machine copy is spliced per non-final iteration.
  EXPECT_EQ(r.value().stats.expansions, r.value().stats.iterations - 1);
  // The answer trace is monotone and ends at the answer count.
  const auto& trace = r.value().stats.answers_per_iteration;
  ASSERT_EQ(trace.size(), r.value().stats.iterations);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], trace[i - 1]);
  }
  EXPECT_EQ(trace.back(), r.value().tuples.size());
}

TEST(EngineStatsTest, RegularQueryNeedsNoExpansion) {
  Database db;
  workloads::Chain(db, "e", "v", 20);
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::PathProgramText()).ok());
  auto r = qe.Query("path(v1, Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stats.expansions, 0u);
  EXPECT_EQ(r.value().stats.iterations, 1u);
}

TEST(LevelExtraTest, WideLadderKeepsCountingLinear) {
  // Fan-out at each flat level: counting work stays proportional to the
  // data size while Henschen-Naqvi pays the re-traversal factor.
  Database db;
  const size_t h = 40;
  for (size_t i = 1; i < h; ++i) {
    db.AddFact("up", {"a" + std::to_string(i), "a" + std::to_string(i + 1)});
    db.AddFact("down",
               {"b" + std::to_string(i + 1), "b" + std::to_string(i)});
  }
  for (size_t i = 1; i <= h; ++i) {
    db.AddFact("flat", {"a" + std::to_string(i), "b" + std::to_string(i)});
  }
  Program p = MustParse(workloads::SgProgramText(), db.symbols());
  auto eqs = TransformToEquations(p, db.symbols());
  ASSERT_TRUE(eqs.ok());
  LinearNormalForm nf;
  ASSERT_TRUE(MatchLinearNormalForm(eqs.value().final_system,
                                    *db.symbols().Find("sg"), &nf));
  ViewRegistry views(&db.symbols());
  views.RegisterDatabase(db);
  TermId src = views.pool().Unary(*db.symbols().Find("a1"));
  LevelStats cs, hs;
  auto c = CountingQuery(views, nf, src, 1000, &cs);
  auto hn = HenschenNaqviQuery(views, nf, src, 1000, &hs);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(hn.ok());
  EXPECT_EQ(c.value(), hn.value());
  EXPECT_LT(cs.up_work + cs.down_work, (hs.up_work + hs.down_work) / 4);
}

TEST(LevelExtraTest, SourceWithNoUpEdges) {
  Database db;
  db.AddFact("flat", {"lone", "mate"});
  db.AddFact("up", {"x", "y"});
  db.AddFact("down", {"y", "x"});
  Program p = MustParse(workloads::SgProgramText(), db.symbols());
  auto eqs = TransformToEquations(p, db.symbols());
  ASSERT_TRUE(eqs.ok());
  LinearNormalForm nf;
  ASSERT_TRUE(MatchLinearNormalForm(eqs.value().final_system,
                                    *db.symbols().Find("sg"), &nf));
  ViewRegistry views(&db.symbols());
  views.RegisterDatabase(db);
  TermId src = views.pool().Unary(*db.symbols().Find("lone"));
  auto c = CountingQuery(views, nf, src, 100, nullptr);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), 1u);
  EXPECT_EQ(db.symbols().Name(views.pool().AsUnary(c.value()[0])), "mate");
}

TEST(QueryEngineExtraTest, StatsResetBetweenQueries) {
  Database db;
  workloads::Fig7c(db, 8);
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  auto r1 = qe.Query("sg(a1, Y)");
  ASSERT_TRUE(r1.ok());
  auto r2 = qe.Query("sg(a5, Y)");
  ASSERT_TRUE(r2.ok());
  // a5 starts higher on the ladder: fewer iterations than from a1.
  EXPECT_LT(r2.value().stats.iterations, r1.value().stats.iterations);
  auto r1_again = qe.Query("sg(a1, Y)");
  ASSERT_TRUE(r1_again.ok());
  EXPECT_EQ(r1_again.value().stats.nodes, r1.value().stats.nodes);
  EXPECT_EQ(r1_again.value().tuples, r1.value().tuples);
}

TEST(QueryEngineExtraTest, SgInverseQueryViaInvertedSystem) {
  Database db;
  workloads::Fig7a(db, 4);
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgramText(workloads::SgProgramText()).ok());
  // sg(X, e2): who is in the same generation as leaf e2?
  auto r = qe.Query("sg(X, e2)");
  ASSERT_TRUE(r.ok()) << r.status().message();
  std::set<std::string> names;
  for (const Tuple& t : r.value().tuples) names.insert(db.symbols().Name(t[0]));
  EXPECT_EQ(names, (std::set<std::string>{"a"}));
}

}  // namespace
}  // namespace binchain
