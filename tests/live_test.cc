// Live-update subsystem: the epoch-based snapshot lifecycle. Publishing a
// sequence of deltas must be observationally identical to cold-rebuilding
// the database at every epoch (the snapshot chain is an optimization, never
// a semantics change), including while queries run concurrently with
// Publish() (the TSan target of the live CI job). Also covers the
// freeze -> thaw -> insert -> re-freeze story on an exclusively owned
// database, epoch storage sharing (copy-on-write), chain compaction, and
// symbol-id stability across epochs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "eval/eval_artifacts.h"
#include "eval/query.h"
#include "live/snapshot_manager.h"
#include "service/query_service.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

struct Fact {
  std::string pred;
  std::vector<std::string> args;
};

/// Reads a workload database back out as string facts, so the same facts
/// can be replayed through the live pipeline and through cold rebuilds.
std::vector<Fact> ExtractFacts(const Database& db) {
  std::vector<Fact> facts;
  for (const std::string& name : db.relation_names()) {
    const Relation* rel = db.Find(name);
    for (TupleRef t : rel->tuples()) {
      Fact f;
      f.pred = name;
      for (SymbolId c : t) f.args.push_back(db.symbols().Name(c));
      facts.push_back(std::move(f));
    }
  }
  return facts;
}

/// Result tuples rendered as sorted "a|b" strings: epoch chains and cold
/// rebuilds intern in different orders, so ids are not comparable — names
/// are.
std::vector<std::string> Render(const std::vector<Tuple>& tuples,
                                const SymbolTable& symbols) {
  std::vector<std::string> out;
  for (const Tuple& t : tuples) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) s += "|";
      s += symbols.Name(t[i]);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string RequestLiteral(const QueryRequest& req) {
  std::string s = req.pred + "(";
  s += req.source.empty() ? "X" : req.source;
  s += ", ";
  s += req.target.empty() ? (req.diagonal ? "X" : "Y") : req.target;
  return s + ")";
}

/// Cold rebuild: a fresh database holding exactly `facts`, a solo engine,
/// and the same queries. The reference the live pipeline must match.
std::vector<std::vector<std::string>> ColdAnswers(
    const std::vector<Fact>& facts, const std::vector<Fact>& schema,
    const char* program_text, const std::vector<QueryRequest>& requests) {
  Database db;
  // Pre-declare every relation of the full workload so the program
  // compiles even when a relation's facts have not been published yet
  // (mirrors the live genesis).
  for (const Fact& f : schema) db.GetOrCreate(f.pred, f.args.size());
  for (const Fact& f : facts) db.AddFact(f.pred, f.args);
  QueryEngine engine(&db);
  EXPECT_TRUE(engine.LoadProgramText(program_text).ok());
  std::vector<std::vector<std::string>> answers;
  for (const QueryRequest& req : requests) {
    auto r = engine.Query(RequestLiteral(req), req.options.ToEvalOptions());
    EXPECT_TRUE(r.ok()) << r.status().message();
    answers.push_back(
        r.ok() ? Render(r.value().tuples, db.symbols())
               : std::vector<std::string>{"<error>"});
  }
  return answers;
}

/// Splits a workload's facts into a genesis load plus `cycles` deltas,
/// publishes them one by one, and checks every epoch's batch results
/// against a cold rebuild of the facts published so far.
void RunPublishEquivalence(const Database& workload, const char* program_text,
                           const std::vector<QueryRequest>& requests,
                           size_t cycles) {
  std::vector<Fact> facts = ExtractFacts(workload);
  ASSERT_GE(facts.size(), cycles + 1);
  size_t genesis_count = facts.size() / 2;
  size_t per_cycle = (facts.size() - genesis_count + cycles - 1) / cycles;

  auto genesis = std::make_unique<Database>();
  // Pre-declare every relation so the program compiles even when all of a
  // relation's facts arrive in later epochs.
  for (const Fact& f : facts) genesis->GetOrCreate(f.pred, f.args.size());
  for (size_t i = 0; i < genesis_count; ++i) {
    genesis->AddFact(facts[i].pred, facts[i].args);
  }
  Program program =
      ParseProgram(program_text, genesis->symbols()).take();

  SnapshotManager manager(std::move(genesis));
  QueryService::Options opts;
  opts.num_threads = 2;
  QueryService service(&manager, program, opts);
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  // Epoch 0 (the sealed genesis) must already match a cold rebuild.
  std::vector<Fact> published(facts.begin(), facts.begin() + genesis_count);
  size_t next_fact = genesis_count;
  for (size_t cycle = 0; cycle <= cycles; ++cycle) {
    if (cycle > 0) {
      size_t end = std::min(facts.size(), next_fact + per_cycle);
      size_t staged = end - next_fact;
      for (; next_fact < end; ++next_fact) {
        manager.AddFact(facts[next_fact].pred, facts[next_fact].args);
        published.push_back(facts[next_fact]);
      }
      PublishStats ps = manager.Publish();
      EXPECT_EQ(ps.epoch, cycle);
      EXPECT_EQ(ps.facts_added + ps.facts_duplicate, staged);
    }
    auto expected = ColdAnswers(published, facts, program_text, requests);
    BatchStats stats;
    auto responses = service.EvalBatch(requests, &stats);
    EXPECT_EQ(stats.epoch, cycle);
    auto tip = manager.Acquire();
    ASSERT_EQ(responses.size(), requests.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].status.ok())
          << responses[i].status.message();
      EXPECT_EQ(responses[i].epoch, cycle) << i;
      EXPECT_EQ(Render(responses[i].tuples, tip->symbols()), expected[i])
          << "query " << i << " at epoch " << cycle;
    }
  }
  EXPECT_EQ(next_fact, facts.size());
}

std::vector<QueryRequest> SgRequests(const std::vector<std::string>& sources,
                                     const QueryOptions& options = {}) {
  std::vector<QueryRequest> out;
  for (const std::string& s : sources) {
    QueryRequest req;
    req.pred = "sg";
    req.source = s;
    req.options = options;
    out.push_back(std::move(req));
  }
  return out;
}

TEST(LiveTest, Fig7bPublishMatchesColdRebuild) {
  Database workload;
  workloads::Fig7b(workload, 12);
  RunPublishEquivalence(workload, workloads::SgProgramText(),
                        SgRequests({"a1", "a3", "a7"}), 3);
}

TEST(LiveTest, LadderPublishMatchesColdRebuild) {
  Database workload;
  workloads::Fig7c(workload, 16);
  RunPublishEquivalence(workload, workloads::SgProgramText(),
                        SgRequests({"a1", "a2", "a8"}), 4);
}

TEST(LiveTest, Fig8CyclicPublishMatchesColdRebuild) {
  Database workload;
  workloads::Fig8(workload, 5, 7);
  QueryOptions options;
  options.use_cyclic_bound = true;
  RunPublishEquivalence(workload, workloads::SgProgramText(),
                        SgRequests({"a1", "a2"}, options), 3);
}

TEST(LiveTest, InvertedAndAllFreeQueriesAcrossEpochs) {
  Database workload;
  workloads::Fig7c(workload, 10);
  QueryRequest inverted;  // sg(X, b3): inverted system
  inverted.pred = "sg";
  inverted.target = "b3";
  QueryRequest all_free;  // sg(X, Y)
  all_free.pred = "sg";
  RunPublishEquivalence(workload, workloads::SgProgramText(),
                        {inverted, all_free}, 3);
}

// Queries running while Publish() swaps the tip: every batch must see one
// consistent epoch, and its results must equal the cold rebuild of exactly
// that epoch's facts. Run under TSan in CI.
TEST(LiveTest, ConcurrentPublishAndQueries) {
  Database workload;
  workloads::Fig7c(workload, 14);
  std::vector<Fact> facts = ExtractFacts(workload);
  const size_t kCycles = 4;
  size_t genesis_count = facts.size() / 2;
  size_t per_cycle = (facts.size() - genesis_count + kCycles - 1) / kCycles;

  auto genesis = std::make_unique<Database>();
  for (const Fact& f : facts) genesis->GetOrCreate(f.pred, f.args.size());
  for (size_t i = 0; i < genesis_count; ++i) {
    genesis->AddFact(facts[i].pred, facts[i].args);
  }
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();

  std::vector<QueryRequest> requests = SgRequests({"a1", "a2", "a5"});
  // Expected answers per epoch, precomputed from cold rebuilds.
  std::vector<std::vector<std::vector<std::string>>> expected;
  {
    std::vector<Fact> published(facts.begin(),
                                facts.begin() + genesis_count);
    expected.push_back(
        ColdAnswers(published, facts, workloads::SgProgramText(), requests));
    size_t next = genesis_count;
    for (size_t c = 1; c <= kCycles; ++c) {
      size_t end = std::min(facts.size(), next + per_cycle);
      for (; next < end; ++next) published.push_back(facts[next]);
      expected.push_back(ColdAnswers(published, facts,
                                     workloads::SgProgramText(), requests));
    }
  }

  SnapshotManager manager(std::move(genesis));
  QueryService::Options opts;
  opts.num_threads = 2;
  QueryService service(&manager, program, opts);
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  std::atomic<bool> done{false};
  std::thread publisher([&] {
    size_t next = genesis_count;
    for (size_t c = 1; c <= kCycles; ++c) {
      size_t end = std::min(facts.size(), next + per_cycle);
      for (; next < end; ++next) {
        manager.AddFact(facts[next].pred, facts[next].args);
      }
      manager.Publish();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.store(true);
  });

  size_t batches = 0;
  while (true) {
    bool was_done = done.load();
    BatchStats stats;
    auto responses = service.EvalBatch(requests, &stats);
    auto tip = manager.Acquire();  // any tip >= response epoch renders names
    ASSERT_LT(stats.epoch, expected.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].status.ok())
          << responses[i].status.message();
      ASSERT_EQ(responses[i].epoch, stats.epoch);  // batch-consistent epoch
      EXPECT_EQ(Render(responses[i].tuples, tip->symbols()),
                expected[stats.epoch][i])
          << "query " << i << " at epoch " << stats.epoch;
    }
    ++batches;
    if (was_done && stats.epoch == kCycles) break;
  }
  publisher.join();
  EXPECT_GE(batches, 1u);
}

// The exclusive-ownership story: freeze -> thaw -> insert -> re-freeze on
// one database, no snapshot chain. The second freeze only has delta index
// work to do (indexed_upto catch-up), and results match a cold rebuild.
TEST(LiveTest, ThawInsertRefreezeMatchesColdRebuild) {
  Database db;
  workloads::Fig7b(db, 10);
  QueryEngine engine(&db);
  ASSERT_TRUE(engine.LoadProgramText(workloads::SgProgramText()).ok());
  db.Freeze();
  EXPECT_TRUE(db.frozen());
  auto before = engine.Query("sg(a1, Y)");
  ASSERT_TRUE(before.ok());

  db.Thaw();
  EXPECT_FALSE(db.frozen());
  // Extend the up/down chains by one level and rewire flat to the new top.
  db.AddFact("up", {"a10", "a11"});
  db.AddFact("down", {"b11", "b10"});
  db.AddFact("flat", {"a11", "b11"});
  db.Freeze();
  EXPECT_TRUE(db.frozen());

  auto after = engine.Query("sg(a1, Y)");
  ASSERT_TRUE(after.ok());
  // The new top level is visible: a11 answers through flat(a11, b11).
  auto novel = engine.Query("sg(a11, Y)");
  ASSERT_TRUE(novel.ok());
  EXPECT_FALSE(novel.value().tuples.empty());

  std::vector<Fact> all = ExtractFacts(db);
  QueryRequest req_a1, req_a11;
  req_a1.pred = req_a11.pred = "sg";
  req_a1.source = "a1";
  req_a11.source = "a11";
  auto expected =
      ColdAnswers(all, all, workloads::SgProgramText(), {req_a1, req_a11});
  EXPECT_EQ(Render(after.value().tuples, db.symbols()), expected[0]);
  EXPECT_EQ(Render(novel.value().tuples, db.symbols()), expected[1]);
}

// Copy-on-write at relation granularity: a publish that touches one
// relation shares every other relation object with the previous epoch and
// layers only the touched one.
TEST(LiveTest, PublishSharesUntouchedRelations) {
  auto genesis = std::make_unique<Database>();
  workloads::Fig7c(*genesis, 8);
  SnapshotManager manager(std::move(genesis));
  manager.Seal();
  auto e0 = manager.Acquire();

  manager.AddFact("up", {"a8", "a9"});
  PublishStats ps = manager.Publish();
  EXPECT_EQ(ps.epoch, 1u);
  EXPECT_EQ(ps.facts_added, 1u);
  EXPECT_EQ(ps.relations_touched, 1u);
  auto e1 = manager.Acquire();

  EXPECT_EQ(e1->Find("flat"), e0->Find("flat"));  // shared object
  EXPECT_EQ(e1->Find("down"), e0->Find("down"));
  EXPECT_NE(e1->Find("up"), e0->Find("up"));      // delta layer
  EXPECT_EQ(e1->Find("up")->base().get(), e0->Find("up"));
  EXPECT_EQ(e1->Find("up")->size(), e0->Find("up")->size() + 1);
  EXPECT_EQ(e1->Find("up")->local_size(), 1u);

  // Duplicate-only delta: no new rows anywhere, no chain growth.
  manager.AddFact("up", {"a8", "a9"});
  PublishStats dup = manager.Publish();
  EXPECT_EQ(dup.facts_added, 0u);
  EXPECT_EQ(dup.facts_duplicate, 1u);
  EXPECT_EQ(dup.relations_touched, 0u);
  auto e2 = manager.Acquire();
  EXPECT_EQ(e2->Find("up"), e1->Find("up"));  // re-shared, not re-layered

  // Old epochs still answer their own contents.
  EXPECT_EQ(e0->Find("up")->size() + 1, e2->Find("up")->size());
}

// Staged facts are unvalidated client input: an arity mismatch with the
// existing schema must be rejected by Publish(), never abort the server.
TEST(LiveTest, PublishRejectsArityMismatch) {
  auto genesis = std::make_unique<Database>();
  genesis->GetOrCreate("e", 2);
  genesis->AddFact("e", {"a", "b"});
  SnapshotManager manager(std::move(genesis));
  manager.Seal();

  manager.AddFact("e", {"a"});            // wrong arity: rejected
  manager.AddFact("e", {"b", "c"});       // fine
  manager.AddFact("e", {"a", "b", "c"});  // wrong arity: rejected
  PublishStats ps = manager.Publish();
  EXPECT_EQ(ps.facts_rejected, 2u);
  EXPECT_EQ(ps.facts_added, 1u);
  auto tip = manager.Acquire();
  EXPECT_EQ(tip->Find("e")->size(), 2u);
}

// Chain depth stays bounded: enough tiny publishes force a flatten, after
// which the relation is standalone again and still holds every row.
TEST(LiveTest, ChainCompactionBoundsDepth) {
  auto genesis = std::make_unique<Database>();
  genesis->GetOrCreate("e", 2);
  for (int i = 0; i < 4; ++i) {
    genesis->AddFact("e", {"n" + std::to_string(i),
                           "n" + std::to_string(i + 1)});
  }
  SnapshotManager manager(std::move(genesis));
  manager.Seal();

  size_t publishes = Relation::kMaxChainDepth + 4;
  size_t max_depth_seen = 0;
  bool flattened = false;
  for (size_t i = 0; i < publishes; ++i) {
    manager.AddFact("e", {"x" + std::to_string(i),
                          "x" + std::to_string(i + 1)});
    PublishStats ps = manager.Publish();
    flattened |= ps.relations_flattened > 0;
    const Relation* rel = manager.Acquire()->Find("e");
    max_depth_seen = std::max(max_depth_seen, rel->chain_depth());
    EXPECT_LE(rel->chain_depth(), Relation::kMaxChainDepth);
  }
  EXPECT_TRUE(flattened);
  EXPECT_GT(max_depth_seen, 1u);
  EXPECT_EQ(manager.Acquire()->Find("e")->size(), 4 + publishes);
}

// Symbol ids are stable across the whole epoch chain: an id minted in any
// epoch names the same constant in every later epoch, and new spellings
// extend rather than re-intern.
TEST(LiveTest, SymbolIdsStableAcrossEpochs) {
  auto genesis = std::make_unique<Database>();
  genesis->GetOrCreate("e", 2);
  genesis->AddFact("e", {"alpha", "beta"});
  SnapshotManager manager(std::move(genesis));
  manager.Seal();
  auto e0 = manager.Acquire();
  SymbolId alpha = *e0->symbols().Find("alpha");

  manager.AddFact("e", {"beta", "gamma"});
  PublishStats ps = manager.Publish();
  EXPECT_EQ(ps.new_symbols, 1u);  // only "gamma" is new
  auto e1 = manager.Acquire();
  EXPECT_EQ(*e1->symbols().Find("alpha"), alpha);
  EXPECT_EQ(e1->symbols().Name(alpha), "alpha");
  SymbolId gamma = *e1->symbols().Find("gamma");
  EXPECT_GE(gamma, e0->symbols().size());  // extension, not re-intern
  EXPECT_FALSE(e0->symbols().Find("gamma").has_value());  // old epoch clean
}

// Retraction equivalence: publishing tombstones must be observationally
// identical to cold-rebuilding the database *without* the deleted facts —
// including delete-then-reinsert inside one batch (staging order applies)
// and resurrection across epochs.
TEST(LiveTest, TombstonePublishMatchesColdRebuildWithoutDeletedFacts) {
  Database workload;
  workloads::Fig7c(workload, 12);
  std::vector<Fact> facts = ExtractFacts(workload);
  ASSERT_GE(facts.size(), 8u);

  auto genesis = std::make_unique<Database>();
  for (const Fact& f : facts) genesis->GetOrCreate(f.pred, f.args.size());
  for (const Fact& f : facts) genesis->AddFact(f.pred, f.args);
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
  SnapshotManager manager(std::move(genesis));
  QueryService::Options opts;
  opts.num_threads = 2;
  QueryService service(&manager, program, opts);
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  auto requests = SgRequests({"a1", "a2", "a5"});
  std::vector<Fact> published = facts;
  auto same_fact = [](const Fact& a, const Fact& b) {
    return a.pred == b.pred && a.args == b.args;
  };
  auto unpublish = [&](const Fact& f) {
    published.erase(std::remove_if(published.begin(), published.end(),
                                   [&](const Fact& g) {
                                     return same_fact(f, g);
                                   }),
                    published.end());
  };
  auto check_epoch = [&](uint64_t epoch) {
    auto expected = ColdAnswers(published, facts,
                                workloads::SgProgramText(), requests);
    auto responses = service.EvalBatch(requests);
    auto tip = manager.Acquire();
    ASSERT_EQ(responses.size(), requests.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].status.ok()) << responses[i].status.message();
      EXPECT_EQ(responses[i].epoch, epoch) << i;
      EXPECT_EQ(Render(responses[i].tuples, tip->symbols()), expected[i])
          << "query " << i << " at epoch " << epoch;
    }
  };

  // Epoch 1: retract a spread of workload facts, one unknown fact, and add
  // a fresh one.
  const Fact dead0 = facts[0];
  const Fact dead1 = facts[facts.size() / 2];
  const Fact dead2 = facts.back();
  for (const Fact* f : {&dead0, &dead1, &dead2}) {
    manager.DeleteFact(f->pred, f->args);
    unpublish(*f);
  }
  manager.DeleteFact("up", {"nobody", "nowhere"});
  manager.AddFact("up", {"zz1", "zz2"});
  published.push_back(Fact{"up", {"zz1", "zz2"}});
  PublishStats p1 = manager.Publish();
  EXPECT_EQ(p1.facts_deleted, 3u);
  EXPECT_EQ(p1.facts_delete_missing, 1u);
  EXPECT_EQ(p1.facts_added, 1u);
  check_epoch(1);

  // Epoch 2: delete-then-reinsert within one batch lands live (staging
  // order), and retracting the same fact twice is one tombstone + one miss.
  manager.DeleteFact(dead1.pred, dead1.args);  // already gone: miss
  manager.DeleteFact(facts[1].pred, facts[1].args);
  manager.AddFact(facts[1].pred, facts[1].args);  // resurrected in-batch
  PublishStats p2 = manager.Publish();
  EXPECT_EQ(p2.facts_deleted, 1u);
  EXPECT_EQ(p2.facts_delete_missing, 1u);
  EXPECT_EQ(p2.facts_added, 1u);
  check_epoch(2);

  // Epoch 3: resurrect a fact retracted two epochs ago.
  manager.AddFact(dead0.pred, dead0.args);
  published.push_back(dead0);
  PublishStats p3 = manager.Publish();
  EXPECT_EQ(p3.facts_added, 1u);
  EXPECT_EQ(p3.facts_duplicate, 0u);
  check_epoch(3);
}

// A tombstone-only delta changes relation contents without adding rows: it
// must survive empty-delta pruning, shrink the relation's adjacency memo
// via a standalone rebuild (chained extension can only grow), and keep
// every untouched relation's memo shared by pointer.
TEST(LiveTest, TombstoneOnlyPublishShrinksMemosAndIsNotPruned) {
  auto genesis = std::make_unique<Database>();
  workloads::Fig7c(*genesis, 10);
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
  SnapshotManager manager(std::move(genesis));
  QueryService::Options opts;
  opts.num_threads = 2;
  QueryService service(&manager, program, opts);
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  auto artifacts_of = [&]() {
    auto a = std::dynamic_pointer_cast<const EvalArtifacts>(
        manager.Acquire()->artifact());
    EXPECT_NE(a, nullptr);
    return a;
  };
  auto name_pair = [](const Database& db, TupleRef t) {
    return std::vector<std::string>{db.symbols().Name(t[0]),
                                    db.symbols().Name(t[1])};
  };

  auto e0 = manager.Acquire();
  auto a0 = artifacts_of();
  SymbolId up = *e0->symbols().Find("up");
  SymbolId flat = *e0->symbols().Find("flat");
  SymbolId down = *e0->symbols().Find("down");

  // Epoch 1: retract exactly one "up" fact, nothing else. The RowRange
  // must outlive its iterators (they point back into it).
  const Relation* up0 = e0->Find("up");
  RowRange up0_rows = up0->tuples();
  auto it = up0_rows.begin();
  std::vector<std::string> victim = name_pair(*e0, *it);
  ++it;
  std::vector<std::string> second = name_pair(*e0, *it);
  manager.DeleteFact("up", victim);
  PublishStats p1 = manager.Publish();
  EXPECT_EQ(p1.facts_deleted, 1u);
  EXPECT_EQ(p1.relations_touched, 1u);
  EXPECT_EQ(p1.facts_added, 0u);

  auto e1 = manager.Acquire();
  auto a1 = artifacts_of();
  // Not pruned: the tombstone-bearing layer IS the semantic change.
  ASSERT_NE(e1->Find("up"), e0->Find("up"));
  EXPECT_EQ(e1->Find("up")->base().get(), e0->Find("up"));
  EXPECT_EQ(e1->Find("up")->local_size(), 0u);
  EXPECT_EQ(e1->Find("up")->live_size(), e0->Find("up")->live_size() - 1);
  EXPECT_EQ(e1->Find("flat"), e0->Find("flat"));
  EXPECT_EQ(e1->Find("down"), e0->Find("down"));
  // Untouched memos re-shared by pointer; the shrunk relation's memo is a
  // standalone rebuild (a chained layer could never un-index the dead row).
  EXPECT_EQ(a1->Adjacency(flat), a0->Adjacency(flat));
  EXPECT_EQ(a1->Adjacency(down), a0->Adjacency(down));
  ASSERT_NE(a1->Adjacency(up), a0->Adjacency(up));
  EXPECT_EQ(a1->Adjacency(up)->chain_depth(), 0u);
  EXPECT_EQ(a1->refresh_stats().adjacency_shrunk, 1u);
  EXPECT_EQ(a1->refresh_stats().adjacency_reused, 2u);
  EXPECT_EQ(a1->refresh_stats().adjacency_extended, 0u);

  // Epoch 2: resurrect the victim and retract another fact. The dead-set
  // *cardinality* is back to the previous layer's, but the membership
  // moved — the dead_mutations guard must keep this delta too.
  manager.AddFact("up", victim);
  manager.DeleteFact("up", second);
  PublishStats p2 = manager.Publish();
  EXPECT_EQ(p2.facts_added, 1u);
  EXPECT_EQ(p2.facts_deleted, 1u);

  auto e2 = manager.Acquire();
  auto a2 = artifacts_of();
  ASSERT_NE(e2->Find("up"), e1->Find("up"));
  EXPECT_EQ(e2->Find("up")->dead_count(), e1->Find("up")->dead_count());
  EXPECT_NE(e2->Find("up")->dead_mutations(),
            e1->Find("up")->dead_mutations());
  EXPECT_EQ(a2->refresh_stats().adjacency_shrunk, 1u);
  EXPECT_EQ(e2->Find("up")->live_size(), e1->Find("up")->live_size());

  // The tip answers from the shrunk memos exactly like a cold database
  // holding the surviving facts.
  std::vector<Fact> survivors = ExtractFacts(*e2);
  auto requests = SgRequests({"a1", "a3"});
  auto expected = ColdAnswers(survivors, survivors,
                              workloads::SgProgramText(), requests);
  auto responses = service.EvalBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok()) << responses[i].status.message();
    EXPECT_EQ(Render(responses[i].tuples, e2->symbols()), expected[i]) << i;
  }
}

}  // namespace
}  // namespace binchain
